(* Tests for the platform abstraction: the lane-parametric SIMD unit
   against the historical 4-lane reference semantics, platform
   validation/registry/custom-file loading, the second built-in
   backend end to end through the kernels, and the platform stamp in
   checkpoints. *)

open Swarch
module Md = Mdcore
module K = Swgmx.Kernel_common

let r32 = Simd.round32

(* tolerance class: ulp-budget in spirit — lane-count comparisons of
   single-rounded values should agree to ~1 double ulp; expressed as a
   1e-12 drift via the audited swverify comparator *)
let feq a b = Swverify.Tol.close (Swverify.Tol.drift 1e-12) a b

let check_float msg a b =
  try Swverify.Tol.check ~what:msg (Swverify.Tol.drift 1e-12) a b
  with Failure m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Simd.vec at 4 lanes against the historical floatv4 semantics: every
   lane-wise op is a single round32 of the double-precision result of
   already-rounded operands, hsum is the two-round pairwise tree, and
   each op charges exactly one vector instruction. *)

let finite_float = QCheck.float_range (-1e6) 1e6

let prop_v4_lanewise_ops_bitexact =
  QCheck.Test.make ~name:"simd: 4-lane ops match rounded reference" ~count:300
    QCheck.(
      pair
        (quad finite_float finite_float finite_float finite_float)
        (quad finite_float finite_float finite_float finite_float))
    (fun ((a0, a1, a2, a3), (b0, b1, b2, b3)) ->
      let c = Cost.create () in
      let x = Simd.make a0 a1 a2 a3 and y = Simd.make b0 b1 b2 b3 in
      let xs = Simd.to_array x and ys = Simd.to_array y in
      let lanewise op f =
        let v = op c x y in
        Array.for_all Fun.id
          (Array.init 4 (fun i -> Simd.lane v i = r32 (f xs.(i) ys.(i))))
      in
      lanewise Simd.add ( +. )
      && lanewise Simd.sub ( -. )
      && lanewise Simd.mul ( *. )
      && c.Cost.simd_ops = 3.0)

let prop_v4_fma_bitexact =
  QCheck.Test.make ~name:"simd: 4-lane fma matches reference" ~count:300
    QCheck.(triple finite_float finite_float finite_float)
    (fun (a, b, d) ->
      let c = Cost.create () in
      let v =
        Simd.fma c (Simd.splat 4 a) (Simd.splat 4 b) (Simd.splat 4 d)
      in
      Simd.lane v 0 = r32 ((r32 a *. r32 b) +. r32 d) && c.Cost.simd_ops = 1.0)

let prop_v4_hsum_pairwise_tree =
  QCheck.Test.make ~name:"simd: 4-lane hsum is the 2-round tree" ~count:300
    QCheck.(quad finite_float finite_float finite_float finite_float)
    (fun (a, b, d, e) ->
      let c = Cost.create () in
      let v = Simd.make a b d e in
      let s = Simd.hsum c v in
      let l = Simd.to_array v in
      s = r32 (r32 (l.(0) +. l.(1)) +. r32 (l.(2) +. l.(3)))
      && c.Cost.simd_ops = 2.0)

let test_v4_vshuff_reference () =
  let c = Cost.create () in
  let x = Simd.make 1.0 2.0 3.0 4.0 and y = Simd.make 5.0 6.0 7.0 8.0 in
  (* exhaustively: every pick tuple must select (x_i, x_j, y_k, y_l) *)
  for i = 0 to 3 do
    for j = 0 to 3 do
      for k = 0 to 3 do
        for l = 0 to 3 do
          let v = Simd.vshuff c x y (i, j, k, l) in
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "vshuff %d%d%d%d" i j k l)
            [
              Simd.lane x i; Simd.lane x j; Simd.lane y k; Simd.lane y l;
            ]
            (Array.to_list (Simd.to_array v))
        done
      done
    done
  done;
  check_float "one instruction each" 256.0 c.Cost.simd_ops;
  Alcotest.check_raises "pick out of range"
    (Invalid_argument "Simd.lane: 4 not in 0..3") (fun () ->
      ignore (Simd.vshuff c x y (4, 0, 0, 0)))

(* ------------------------------------------------------------------ *)
(* wider vectors *)

let test_vec8_basics () =
  let c = Cost.create () in
  let v = Simd.init 8 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check int) "width" 8 (Simd.width v);
  let w = Simd.add c v (Simd.splat 8 10.0) in
  check_float "lane 7" 18.0 (Simd.lane w 7);
  check_float "one instruction regardless of lanes" 1.0 c.Cost.simd_ops

let test_vec8_hsum_three_rounds () =
  let c = Cost.create () in
  let v = Simd.init 8 (fun i -> float_of_int (i + 1)) in
  check_float "hsum 1..8" 36.0 (Simd.hsum c v);
  check_float "3 halving rounds" 3.0 c.Cost.simd_ops

let test_vec8_vshuff_per_group () =
  let c = Cost.create () in
  let x = Simd.init 8 (fun i -> float_of_int (i + 1)) in
  let y = Simd.init 8 (fun i -> float_of_int (i + 11)) in
  let v = Simd.vshuff c x y (0, 2, 1, 3) in
  (* the pick applies within each 4-lane group independently *)
  Alcotest.(check (list (float 0.0)))
    "both groups shuffled"
    [ 1.0; 3.0; 12.0; 14.0; 5.0; 7.0; 16.0; 18.0 ]
    (Array.to_list (Simd.to_array v))

let test_vec_slice_and_narrow () =
  let c = Cost.create () in
  let v = Simd.init 8 (fun i -> float_of_int (i + 1)) in
  (* full-width slice is the identity, and free *)
  Alcotest.(check bool) "identity slice" true (Simd.slice v 0 8 == v);
  let half = Simd.slice v 4 4 in
  check_float "sliced lane" 5.0 (Simd.lane half 0);
  check_float "slices are free" 0.0 c.Cost.simd_ops;
  (* narrowing 8 -> 4 folds the upper half on, one instruction *)
  let n = Simd.narrow c v 4 in
  Alcotest.(check int) "narrowed width" 4 (Simd.width n);
  check_float "lane 0 = 1+5" 6.0 (Simd.lane n 0);
  check_float "lane 3 = 4+8" 12.0 (Simd.lane n 3);
  check_float "one fold instruction" 1.0 c.Cost.simd_ops;
  (* narrowing to the current width is a free identity *)
  Alcotest.(check bool) "identity narrow" true (Simd.narrow c n 4 == n);
  check_float "still one instruction" 1.0 c.Cost.simd_ops

(* ------------------------------------------------------------------ *)
(* Platform.validate *)

let test_validate_rejects_zero_lanes () =
  let bad = { Platform.default with Platform.simd_lanes = 0 } in
  Alcotest.check_raises "zero lanes"
    (Invalid_argument "Platform: simd_lanes must be positive") (fun () ->
      Platform.validate bad)

let test_validate_rejects_empty_dma_curve () =
  let bad = { Platform.default with Platform.dma_points = [||] } in
  Alcotest.check_raises "empty curve"
    (Invalid_argument "Platform: dma_points must be non-empty") (fun () ->
      Platform.validate bad)

let test_validate_rejects_non_monotone_curve () =
  let bad =
    {
      Platform.default with
      Platform.dma_points = [| (8, 1e9); (256, 2e9); (128, 3e9) |];
    }
  in
  Alcotest.check_raises "unsorted sizes"
    (Invalid_argument "Platform: dma_points must be size-sorted") (fun () ->
      Platform.validate bad)

let test_builtins_valid () =
  List.iter Platform.validate Platform.builtin;
  Alcotest.(check bool) "default is sw26010" true
    (Platform.default == Platform.sw26010)

(* ------------------------------------------------------------------ *)
(* registry and custom loader *)

let test_registry_finds_builtins () =
  Alcotest.(check bool) "sw26010" true
    (Platform.find "sw26010" = Some Platform.sw26010);
  Alcotest.(check bool) "sw26010_pro" true
    (Platform.find "sw26010_pro" = Some Platform.sw26010_pro);
  Alcotest.(check bool) "unknown" true (Platform.find "cray-1" = None);
  Alcotest.(check bool) "names lists both" true
    (List.mem "sw26010" (Platform.names ())
    && List.mem "sw26010_pro" (Platform.names ()))

let test_resolve_unknown_fails () =
  match Platform.resolve "no-such-platform" with
  | _ -> Alcotest.fail "resolved a nonexistent platform"
  | exception Invalid_argument _ -> ()

let test_custom_of_string () =
  let p =
    Platform.of_string
      "base = sw26010\nname = tuned\n# doubled LDM\nldm_kb = 128\nsimd_lanes \
       = 8\n"
  in
  Alcotest.(check string) "name" "tuned" p.Platform.name;
  Alcotest.(check int) "ldm" (128 * 1024) p.Platform.ldm_bytes;
  Alcotest.(check int) "lanes" 8 p.Platform.simd_lanes;
  Alcotest.(check int) "inherited cpes" Platform.sw26010.Platform.cpe_count
    p.Platform.cpe_count

let test_custom_dma_curve_and_errors () =
  let p =
    Platform.of_string "base = sw26010\ndma_curve = 8:1e9, 128:2e9, 512:4e9\n"
  in
  Alcotest.(check int) "curve points" 3 (Array.length p.Platform.dma_points);
  check_float "curve bw" 2e9 (snd p.Platform.dma_points.(1));
  (match Platform.of_string "base = sw26010\nwarp_drive = 9\n" with
  | _ -> Alcotest.fail "unknown field accepted"
  | exception Invalid_argument _ -> ());
  match Platform.of_string "base = atari2600\n" with
  | _ -> Alcotest.fail "unknown base accepted"
  | exception Invalid_argument _ -> ()

let test_register_validates () =
  (match
     Platform.register { Platform.sw26010 with Platform.simd_lanes = -1 }
   with
  | () -> Alcotest.fail "invalid platform registered"
  | exception Invalid_argument _ -> ());
  let p = { Platform.sw26010_pro with Platform.name = "sw26010_pro_tweaked" } in
  Platform.register p;
  Alcotest.(check bool) "registered found" true
    (Platform.find "sw26010_pro_tweaked" = Some p)

(* ------------------------------------------------------------------ *)
(* the second backend end to end: kernels on the SW26010-Pro must
   still reproduce the double-precision reference physics, with the
   8-lane vector path and the bigger LDM geometry *)

let setup cfg =
  let st = Md.Water.build ~molecules:40 ~seed:7 () in
  let n = Md.Md_state.n_atoms st in
  let box = st.Md.Md_state.box in
  let rcut = Float.min 0.9 (0.45 *. Md.Box.min_edge box) in
  let params = { Md.Nonbonded.rcut; elec = Md.Nonbonded.Reaction_field } in
  let cl = Md.Cluster.build box st.Md.Md_state.pos n in
  let pairs = Md.Pair_list.build box cl ~pos:st.Md.Md_state.pos ~rlist:rcut () in
  let sys =
    K.make cfg ~box ~params ~cl ~topo:st.Md.Md_state.topo ~ff:st.Md.Md_state.ff
      ~pos:st.Md.Md_state.pos
  in
  (st, sys, pairs)

let test_pro_variant_matches_reference variant () =
  let cfg = Platform.sw26010_pro in
  let st, sys, pairs = setup cfg in
  Md.Md_state.clear_forces st;
  let e = Md.Energy.create () in
  ignore (Md.Nonbonded.compute st sys.K.cl pairs sys.K.params e);
  let ref_f = Md.Fbuf.to_array st.Md.Md_state.force in
  let cg = Core_group.create cfg in
  let outcome = Swgmx.Kernel.run sys pairs cg variant in
  let fb = Md.Fbuf.create (3 * Md.Md_state.n_atoms st) in
  K.scatter_forces sys outcome.Swgmx.Kernel.result fb;
  let f = Md.Fbuf.to_array fb in
  let scale =
    Array.fold_left (fun m x -> Float.max m (Float.abs x)) 1.0 ref_f
  in
  (* tolerance class: ulp-budget at mixed-precision force scale *)
  try
    Swverify.Buf.check_arrays
      ~what:(Swgmx.Variant.name variant ^ "/pro forces")
      (Swverify.Tol.rel_abs ~rel:0.0 ~abs:(2e-4 *. scale))
      ref_f f
  with Failure m -> Alcotest.fail m

let test_pro_geometry_follows_ldm () =
  let base = Platform.sw26010 and pro = Platform.sw26010_pro in
  Alcotest.(check int) "read lines x4" (4 * K.read_lines base)
    (K.read_lines pro);
  Alcotest.(check int) "write lines x4" (4 * K.write_lines base)
    (K.write_lines pro)

let test_vector_kernel_rejects_bad_lane_count () =
  let cfg = { Platform.sw26010 with Platform.simd_lanes = 6 } in
  let _, sys, pairs = setup cfg in
  let cg = Core_group.create cfg in
  match Swgmx.Kernel.run sys pairs cg Swgmx.Variant.Vec with
  | _ -> Alcotest.fail "6-lane vector kernel accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* platform stamp in checkpoints *)

let test_checkpoint_records_platform () =
  let n = 2 in
  let pos = Md.Fbuf.init (3 * n) float_of_int in
  let vel = Md.Fbuf.init (3 * n) float_of_int in
  let ck =
    Swio.Checkpoint.capture ~platform:"sw26010_pro" ~step:0 ~pos ~vel
      ~n_atoms:n ()
  in
  let ck2 = Swio.Checkpoint.of_string (Swio.Checkpoint.to_string ck) in
  Alcotest.(check string) "platform survives round-trip" "sw26010_pro"
    ck2.Swio.Checkpoint.platform;
  (* a version-1 file has no platform line and matches anything *)
  let v1 =
    "swgmx-checkpoint 1\n0 1\n"
    ^ String.concat "" (List.init 6 (fun _ -> "0x1p0\n"))
  in
  Alcotest.(check string) "v1 parses with unknown platform" ""
    (Swio.Checkpoint.of_string v1).Swio.Checkpoint.platform

let test_restart_rejects_platform_mismatch () =
  let molecules = 8 and seed = 3 and steps = 6 in
  let _, st, _ =
    Swgmx.Engine.simulate_protected ~molecules ~seed ~steps ~checkpoint_every:2
      ~sample_every:2 ()
  in
  let n = Md.Md_state.n_atoms st in
  let ck =
    Swio.Checkpoint.capture ~platform:"sw26010_pro" ~step:2
      ~pos:st.Md.Md_state.pos ~vel:st.Md.Md_state.vel ~n_atoms:n ()
  in
  match
    Swgmx.Engine.simulate_protected ~molecules ~seed ~steps ~restart:ck
      ~sample_every:2 ()
  with
  | _ -> Alcotest.fail "platform-mismatched restart accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error names both platforms" true
        (let has s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has msg "sw26010_pro" && has msg "sw26010")

let test_restart_accepts_matching_platform () =
  let molecules = 8 and seed = 3 and steps = 6 in
  let ck = ref None in
  let _ =
    Swgmx.Engine.simulate_protected ~molecules ~seed ~steps ~checkpoint_every:2
      ~on_checkpoint:(fun c -> ck := Some c)
      ~sample_every:2 ()
  in
  match !ck with
  | None -> Alcotest.fail "no checkpoint captured"
  | Some ck ->
      Alcotest.(check string) "stamped with active platform"
        Platform.default.Platform.name ck.Swio.Checkpoint.platform;
      if ck.Swio.Checkpoint.step >= steps then ()
      else
        ignore
          (Swgmx.Engine.simulate_protected ~molecules ~seed ~steps ~restart:ck
             ~sample_every:2 ())

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ( "platform.simd",
      qsuite
        [
          prop_v4_lanewise_ops_bitexact;
          prop_v4_fma_bitexact;
          prop_v4_hsum_pairwise_tree;
        ]
      @ [
          Alcotest.test_case "vshuff reference" `Quick test_v4_vshuff_reference;
          Alcotest.test_case "8-lane basics" `Quick test_vec8_basics;
          Alcotest.test_case "8-lane hsum rounds" `Quick
            test_vec8_hsum_three_rounds;
          Alcotest.test_case "8-lane vshuff groups" `Quick
            test_vec8_vshuff_per_group;
          Alcotest.test_case "slice and narrow" `Quick test_vec_slice_and_narrow;
        ] );
    ( "platform.registry",
      [
        Alcotest.test_case "rejects zero lanes" `Quick
          test_validate_rejects_zero_lanes;
        Alcotest.test_case "rejects empty DMA curve" `Quick
          test_validate_rejects_empty_dma_curve;
        Alcotest.test_case "rejects non-monotone curve" `Quick
          test_validate_rejects_non_monotone_curve;
        Alcotest.test_case "builtins valid" `Quick test_builtins_valid;
        Alcotest.test_case "registry finds builtins" `Quick
          test_registry_finds_builtins;
        Alcotest.test_case "resolve unknown fails" `Quick
          test_resolve_unknown_fails;
        Alcotest.test_case "custom file inherits base" `Quick
          test_custom_of_string;
        Alcotest.test_case "custom curve + bad fields" `Quick
          test_custom_dma_curve_and_errors;
        Alcotest.test_case "register validates" `Quick test_register_validates;
      ] );
    ( "platform.pro",
      [
        Alcotest.test_case "Vec matches reference" `Quick
          (test_pro_variant_matches_reference Swgmx.Variant.Vec);
        Alcotest.test_case "Mark matches reference" `Quick
          (test_pro_variant_matches_reference Swgmx.Variant.Mark);
        Alcotest.test_case "Cache matches reference" `Quick
          (test_pro_variant_matches_reference Swgmx.Variant.Cache);
        Alcotest.test_case "geometry follows LDM" `Quick
          test_pro_geometry_follows_ldm;
        Alcotest.test_case "rejects non-multiple lanes" `Quick
          test_vector_kernel_rejects_bad_lane_count;
      ] );
    ( "platform.checkpoint",
      [
        Alcotest.test_case "records platform" `Quick
          test_checkpoint_records_platform;
        Alcotest.test_case "restart rejects mismatch" `Quick
          test_restart_rejects_platform_mismatch;
        Alcotest.test_case "restart accepts match" `Quick
          test_restart_accepts_matching_platform;
      ] );
  ]
