(* Unit and property tests for the SW26010 architecture simulator. *)

open Swarch

(* tolerance class: physical-drift (Swverify.Tol.drift) — cost-model
   arithmetic accumulates rounding; nothing here needs bit-identity *)
let feq ?(eps = 1e-9) a b = Swverify.Tol.close (Swverify.Tol.drift eps) a b

let check_float ?(eps = 1e-9) msg a b =
  try Swverify.Tol.check ~what:msg (Swverify.Tol.drift eps) a b
  with Failure m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_default_valid () = Config.validate Config.default

let test_config_peak_bw () =
  check_float "peak is last table point" 30.48e9 (Config.peak_dma_bw Config.default)

let test_config_rejects_bad () =
  let bad = { Config.default with Config.cpe_count = 0 } in
  Alcotest.check_raises "zero cpes" (Invalid_argument "Platform: cpe_count must be positive")
    (fun () -> Config.validate bad)

let test_config_rejects_unsorted () =
  let bad = { Config.default with Config.dma_points = [| (128, 1e9); (8, 2e9) |] } in
  Alcotest.check_raises "unsorted" (Invalid_argument "Platform: dma_points must be size-sorted")
    (fun () -> Config.validate bad)

(* ------------------------------------------------------------------ *)
(* Dma *)

let test_dma_table2_points () =
  (* The model must pass exactly through the measured Table 2 points. *)
  List.iter
    (fun (size, bw) -> check_float (Printf.sprintf "bw at %dB" size) bw (Dma.bandwidth Config.default size))
    [ (8, 0.99e9); (128, 15.77e9); (256, 28.88e9); (512, 28.98e9); (2048, 30.48e9) ]

let test_dma_monotone_regions () =
  (* Bandwidth never decreases with size on the Table 2 curve. *)
  let prev = ref 0.0 in
  for s = 1 to 4096 do
    let bw = Dma.bandwidth Config.default s in
    Alcotest.(check bool) "monotone" true (bw >= !prev -. 1.0);
    prev := bw
  done

let test_dma_plateau () =
  check_float "beyond last point = plateau" 30.48e9 (Dma.bandwidth Config.default 65536)

let test_dma_small_latency_bound () =
  (* A 4-byte transfer must be slower than half the 8-byte bandwidth. *)
  let bw4 = Dma.bandwidth Config.default 4 in
  check_float "4B is half of 8B" (0.99e9 /. 2.0) bw4

let test_dma_charges_cost () =
  let c = Cost.create () in
  Dma.get Config.default c ~bytes:256;
  Dma.put Config.default c ~bytes:256;
  Alcotest.(check int) "two transactions" 2 (Cost.transactions c);
  check_float "bytes" 512.0 c.Cost.dma_bytes;
  check_float "time" (2.0 *. 256.0 /. 28.88e9) c.Cost.dma_time_s

let test_dma_zero_bytes_free () =
  let c = Cost.create () in
  Dma.get Config.default c ~bytes:0;
  Alcotest.(check int) "no transaction" 0 (Cost.transactions c)

let test_dma_unaligned_penalty () =
  let ca = Cost.create () and cu = Cost.create () in
  Dma.get Config.default ca ~bytes:96;
  Dma.get ~aligned:false Config.default cu ~bytes:96;
  Alcotest.(check bool) "unaligned slower" true (cu.Cost.dma_time_s > ca.Cost.dma_time_s);
  check_float "same bytes" ca.Cost.dma_bytes cu.Cost.dma_bytes

let test_cg_overlapped_bound () =
  let g = Core_group.create Config.default in
  Cost.flops (Core_group.cpe g 0).Cpe.cost 1.45e9;
  Dma.get Config.default (Core_group.cpe g 1).Cpe.cost ~bytes:2048;
  let serial = Core_group.elapsed g in
  let overlapped = Core_group.elapsed_overlapped g in
  Alcotest.(check bool) "overlap never slower" true (overlapped <= serial);
  (* compute (1 s) dominates the one small transfer *)
  check_float "overlap = max phase" 1.0 overlapped

let prop_dma_bigger_never_slower =
  QCheck.Test.make ~name:"dma: time grows with size" ~count:200
    QCheck.(pair (int_range 1 4000) (int_range 1 4000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Dma.transfer_time Config.default lo <= Dma.transfer_time Config.default hi +. 1e-15)

let prop_dma_aggregation_wins =
  (* Moving N bytes as one transfer is never slower than as k chunks. *)
  QCheck.Test.make ~name:"dma: one big transfer beats many small" ~count:200
    QCheck.(pair (int_range 1 64) (int_range 8 512))
    (fun (k, chunk) ->
      let total = k * chunk in
      Dma.transfer_time Config.default total
      <= (float_of_int k *. Dma.transfer_time Config.default chunk) +. 1e-15)

(* ------------------------------------------------------------------ *)
(* Ldm *)

let test_ldm_alloc_free () =
  let l = Ldm.create ~capacity:1024 in
  Ldm.alloc l 512;
  Alcotest.(check int) "used" 512 (Ldm.used l);
  Alcotest.(check int) "available" 512 (Ldm.available l);
  Ldm.free l 512;
  Alcotest.(check int) "freed" 0 (Ldm.used l);
  Alcotest.(check int) "high water" 512 (Ldm.high_water l)

let test_ldm_overflow () =
  let l = Ldm.create ~capacity:100 in
  Ldm.alloc l 60;
  (match Ldm.alloc l 60 with
  | () -> Alcotest.fail "expected Out_of_ldm"
  | exception Ldm.Out_of_ldm { requested; available } ->
      Alcotest.(check int) "requested" 60 requested;
      Alcotest.(check int) "available" 40 available)

let test_ldm_with_alloc_releases_on_raise () =
  let l = Ldm.create ~capacity:100 in
  (try Ldm.with_alloc l 80 (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "released" 0 (Ldm.used l)

let test_ldm_capacity_is_64k () =
  let cpe = Cpe.create Config.default 0 in
  Alcotest.(check int) "64 KB" 65536 (Ldm.available cpe.Cpe.ldm)

(* ------------------------------------------------------------------ *)
(* Cost *)

let test_cost_add () =
  let a = Cost.create () and b = Cost.create () in
  Cost.flops a 10.0;
  Cost.simd b 5.0;
  Cost.gld b 3;
  Cost.add ~into:a b;
  check_float "flops kept" 10.0 a.Cost.scalar_flops;
  check_float "simd added" 5.0 a.Cost.simd_ops;
  Alcotest.(check int) "gld added" 3 (int_of_float a.Cost.gld_count)

let test_cost_cpe_time () =
  let c = Cost.create () in
  Cost.flops c 1.45e9;
  (* 1.45e9 flops at 1 flop/cycle at 1.45 GHz = 1 second *)
  check_float "one second" 1.0 (Cost.cpe_compute_time Config.default c)

let test_cost_gld_latency () =
  let c = Cost.create () in
  Cost.gld c 1000;
  check_float "gld time" (1000.0 *. Config.default.Config.gld_latency_s)
    (Cost.cpe_compute_time Config.default c)

let test_cost_mpe_time () =
  let c = Cost.create () in
  Cost.mpe_flops c (Config.default.Config.mpe_flops_per_cycle *. 1.45e9);
  check_float "mpe 1s" 1.0 (Cost.mpe_time Config.default c)

let test_cost_reset () =
  let c = Cost.create () in
  Cost.flops c 5.0;
  Cost.gld c 2;
  Cost.reset c;
  check_float "flops zero" 0.0 c.Cost.scalar_flops;
  Alcotest.(check int) "gld zero" 0 (int_of_float c.Cost.gld_count)

(* ------------------------------------------------------------------ *)
(* Simd *)

let test_simd_make_lane () =
  let v = Simd.make 1.0 2.0 3.0 4.0 in
  Alcotest.(check (list (float 0.0))) "lanes" [ 1.0; 2.0; 3.0; 4.0 ]
    (Array.to_list (Simd.to_array v))

let test_simd_add () =
  let c = Cost.create () in
  let v = Simd.add c (Simd.make 1.0 2.0 3.0 4.0) (Simd.splat 4 10.0) in
  Alcotest.(check (list (float 0.0))) "sum" [ 11.0; 12.0; 13.0; 14.0 ]
    (Array.to_list (Simd.to_array v));
  check_float "one instruction" 1.0 c.Cost.simd_ops

let test_simd_fma () =
  let c = Cost.create () in
  let v = Simd.fma c (Simd.splat 4 2.0) (Simd.splat 4 3.0) (Simd.splat 4 1.0) in
  check_float "fma lane" 7.0 (Simd.lane v 0);
  check_float "one instruction" 1.0 c.Cost.simd_ops

let test_simd_hsum () =
  let c = Cost.create () in
  check_float "hsum" 10.0 (Simd.hsum c (Simd.make 1.0 2.0 3.0 4.0))

let test_simd_single_precision_rounding () =
  (* 0.1 is not representable in binary32; lanes must hold the rounded value. *)
  let v = Simd.splat 4 0.1 in
  Alcotest.(check bool) "rounded" true (Simd.lane v 0 <> 0.1);
  check_float ~eps:1e-7 "close" 0.1 (Simd.lane v 0)

let test_simd_vshuff () =
  let c = Cost.create () in
  let x = Simd.make 1.0 2.0 3.0 4.0 and y = Simd.make 5.0 6.0 7.0 8.0 in
  let v = Simd.vshuff c x y (0, 2, 1, 3) in
  Alcotest.(check (list (float 0.0))) "shuffle" [ 1.0; 3.0; 6.0; 8.0 ]
    (Array.to_list (Simd.to_array v))

let test_simd_transpose_costs_six () =
  (* Figure 7: the transpose is exactly six vshuff instructions. *)
  let c = Cost.create () in
  let x = Simd.make 1.0 2.0 3.0 4.0
  and y = Simd.make 5.0 6.0 7.0 8.0
  and z = Simd.make 9.0 10.0 11.0 12.0 in
  let p1, p2, p3, p4 = Simd.transpose3x4 c x y z in
  check_float "six shuffles" 6.0 c.Cost.simd_ops;
  Alcotest.(check (triple (float 0.0) (float 0.0) (float 0.0))) "p1" (1.0, 5.0, 9.0) p1;
  Alcotest.(check (triple (float 0.0) (float 0.0) (float 0.0))) "p2" (2.0, 6.0, 10.0) p2;
  Alcotest.(check (triple (float 0.0) (float 0.0) (float 0.0))) "p3" (3.0, 7.0, 11.0) p3;
  Alcotest.(check (triple (float 0.0) (float 0.0) (float 0.0))) "p4" (4.0, 8.0, 12.0) p4

let prop_simd_transpose_roundtrip =
  QCheck.Test.make ~name:"simd: transpose recovers per-particle triples" ~count:200
    QCheck.(triple (array_of_size (QCheck.Gen.return 4) (float_range (-1e3) 1e3))
              (array_of_size (QCheck.Gen.return 4) (float_range (-1e3) 1e3))
              (array_of_size (QCheck.Gen.return 4) (float_range (-1e3) 1e3)))
    (fun (xs, ys, zs) ->
      let c = Cost.create () in
      let r32 = Simd.round32 in
      let x = Simd.of_array 4 xs 0 and y = Simd.of_array 4 ys 0 and z = Simd.of_array 4 zs 0 in
      let ps = [| Simd.transpose3x4 c x y z |] in
      let (p1, p2, p3, p4) = ps.(0) in
      let triples = [| p1; p2; p3; p4 |] in
      Array.for_all
        (fun i ->
          let xi, yi, zi = triples.(i) in
          xi = r32 xs.(i) && yi = r32 ys.(i) && zi = r32 zs.(i))
        [| 0; 1; 2; 3 |])

let test_simd_cmp_select () =
  let c = Cost.create () in
  let m = Simd.cmp_lt c (Simd.make 1.0 5.0 2.0 9.0) (Simd.splat 4 3.0) in
  let v = Simd.select c m (Simd.splat 4 1.0) (Simd.splat 4 0.0) in
  Alcotest.(check (list (float 0.0))) "mask select" [ 1.0; 0.0; 1.0; 0.0 ]
    (Array.to_list (Simd.to_array v))

let prop_simd_arith_matches_scalar =
  QCheck.Test.make ~name:"simd: lanes match rounded scalar arithmetic" ~count:300
    QCheck.(pair (float_range (-1e6) 1e6) (float_range (-1e6) 1e6))
    (fun (a, b) ->
      let c = Cost.create () in
      let va = Simd.splat 4 a and vb = Simd.splat 4 b in
      let r32 = Simd.round32 in
      Simd.lane (Simd.add c va vb) 0 = r32 (r32 a +. r32 b)
      && Simd.lane (Simd.mul c va vb) 2 = r32 (r32 a *. r32 b)
      && Simd.lane (Simd.sub c va vb) 3 = r32 (r32 a -. r32 b))

(* ------------------------------------------------------------------ *)
(* Core_group / Chip *)

let test_cg_max_compute () =
  let g = Core_group.create Config.default in
  Cost.flops (Core_group.cpe g 0).Cpe.cost 1.45e9;
  Cost.flops (Core_group.cpe g 1).Cpe.cost 2.9e9;
  check_float "critical path is slowest CPE" 2.0 (Core_group.max_compute_time g)

let test_cg_dma_sums () =
  let g = Core_group.create Config.default in
  Dma.get Config.default (Core_group.cpe g 0).Cpe.cost ~bytes:2048;
  Dma.get Config.default (Core_group.cpe g 1).Cpe.cost ~bytes:2048;
  check_float "bus time sums" (2.0 *. 2048.0 /. 30.48e9) (Core_group.dma_time g)

let test_cg_elapsed_combines () =
  let g = Core_group.create Config.default in
  Cost.flops (Core_group.cpe g 0).Cpe.cost 1.45e9;
  Dma.get Config.default (Core_group.cpe g 1).Cpe.cost ~bytes:2048;
  Mpe.charge_flops g.Core_group.mpe
    (Config.default.Config.mpe_flops_per_cycle *. 1.45e9);
  check_float "elapsed" (1.0 +. (2048.0 /. 30.48e9) +. 1.0) (Core_group.elapsed g)

let test_cg_reset () =
  let g = Core_group.create Config.default in
  Cost.flops (Core_group.cpe g 5).Cpe.cost 100.0;
  Core_group.reset g;
  check_float "cleared" 0.0 (Core_group.elapsed g)

let test_cg_imbalance () =
  let g = Core_group.create Config.default in
  Core_group.iter_cpes g (fun c -> Cost.flops c.Cpe.cost 100.0);
  check_float "balanced" 1.0 (Core_group.load_imbalance g)

let test_cpe_mesh_position () =
  let c = Cpe.create Config.default 19 in
  Alcotest.(check int) "row" 2 (Cpe.row c);
  Alcotest.(check int) "col" 3 (Cpe.col c)

let test_chip_peak_flops () =
  (* 4 CG x 65 elements x 4 lanes x 2 x 1.45 GHz = 3.016 Tflops *)
  check_float ~eps:1e-3 "3.0 Tflops" 3.016e12 (Chip.peak_flops Config.default)

let test_chip_elapsed_is_max_group () =
  let chip = Chip.create Config.default in
  Cost.flops (Core_group.cpe (Chip.group chip 2) 0).Cpe.cost 1.45e9;
  check_float "max group" 1.0 (Chip.elapsed chip)

(* ------------------------------------------------------------------ *)
(* Platforms *)

let test_platform_ttf_knl () =
  let r = Platforms.ttf_ratio Platforms.sw26010 Platforms.knl in
  Alcotest.(check bool) "~150x KNL" true (r > 140.0 && r < 160.0)

let test_platform_ttf_p100 () =
  let r = Platforms.ttf_ratio Platforms.sw26010 Platforms.p100 in
  Alcotest.(check bool) "~24x P100" true (r > 22.0 && r < 27.0)

let test_platform_ttf_self () =
  check_float "self ratio is 1" 1.0 (Platforms.ttf_ratio Platforms.knl Platforms.knl)

let test_platform_fair_counts () =
  Alcotest.(check int) "KNL fair count" 152 (Platforms.fair_chip_count Platforms.knl);
  Alcotest.(check int) "P100 fair count" 24 (Platforms.fair_chip_count Platforms.p100)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_dma_bigger_never_slower; prop_dma_aggregation_wins;
    prop_simd_transpose_roundtrip; prop_simd_arith_matches_scalar ]

let suites =
  [
    ( "swarch.config",
      [
        Alcotest.test_case "default validates" `Quick test_config_default_valid;
        Alcotest.test_case "peak bandwidth" `Quick test_config_peak_bw;
        Alcotest.test_case "rejects bad cpe count" `Quick test_config_rejects_bad;
        Alcotest.test_case "rejects unsorted dma points" `Quick test_config_rejects_unsorted;
      ] );
    ( "swarch.dma",
      [
        Alcotest.test_case "table 2 points exact" `Quick test_dma_table2_points;
        Alcotest.test_case "monotone in size" `Quick test_dma_monotone_regions;
        Alcotest.test_case "plateau beyond table" `Quick test_dma_plateau;
        Alcotest.test_case "latency bound below 8B" `Quick test_dma_small_latency_bound;
        Alcotest.test_case "charges cost" `Quick test_dma_charges_cost;
        Alcotest.test_case "zero bytes free" `Quick test_dma_zero_bytes_free;
        Alcotest.test_case "unaligned penalty" `Quick test_dma_unaligned_penalty;
      ] );
    ( "swarch.ldm",
      [
        Alcotest.test_case "alloc/free bookkeeping" `Quick test_ldm_alloc_free;
        Alcotest.test_case "overflow raises" `Quick test_ldm_overflow;
        Alcotest.test_case "with_alloc releases on raise" `Quick test_ldm_with_alloc_releases_on_raise;
        Alcotest.test_case "CPE has 64 KB" `Quick test_ldm_capacity_is_64k;
      ] );
    ( "swarch.cost",
      [
        Alcotest.test_case "add accumulates" `Quick test_cost_add;
        Alcotest.test_case "cpe compute time" `Quick test_cost_cpe_time;
        Alcotest.test_case "gld latency dominates" `Quick test_cost_gld_latency;
        Alcotest.test_case "mpe time" `Quick test_cost_mpe_time;
        Alcotest.test_case "reset zeroes" `Quick test_cost_reset;
      ] );
    ( "swarch.simd",
      [
        Alcotest.test_case "make/lane" `Quick test_simd_make_lane;
        Alcotest.test_case "add" `Quick test_simd_add;
        Alcotest.test_case "fma" `Quick test_simd_fma;
        Alcotest.test_case "hsum" `Quick test_simd_hsum;
        Alcotest.test_case "single-precision rounding" `Quick test_simd_single_precision_rounding;
        Alcotest.test_case "vshuff semantics" `Quick test_simd_vshuff;
        Alcotest.test_case "Fig 7 transpose = 6 shuffles" `Quick test_simd_transpose_costs_six;
        Alcotest.test_case "cmp/select" `Quick test_simd_cmp_select;
      ] );
    ( "swarch.core_group",
      [
        Alcotest.test_case "compute is max over CPEs" `Quick test_cg_max_compute;
        Alcotest.test_case "dma bus time sums" `Quick test_cg_dma_sums;
        Alcotest.test_case "elapsed combines phases" `Quick test_cg_elapsed_combines;
        Alcotest.test_case "reset" `Quick test_cg_reset;
        Alcotest.test_case "imbalance metric" `Quick test_cg_imbalance;
        Alcotest.test_case "overlapped elapsed bound" `Quick test_cg_overlapped_bound;
        Alcotest.test_case "cpe mesh position" `Quick test_cpe_mesh_position;
        Alcotest.test_case "chip peak ~3 Tflops" `Quick test_chip_peak_flops;
        Alcotest.test_case "chip elapsed = max group" `Quick test_chip_elapsed_is_max_group;
      ] );
    ( "swarch.platforms",
      [
        Alcotest.test_case "TTF vs KNL ~150" `Quick test_platform_ttf_knl;
        Alcotest.test_case "TTF vs P100 ~24" `Quick test_platform_ttf_p100;
        Alcotest.test_case "TTF self = 1" `Quick test_platform_ttf_self;
        Alcotest.test_case "fair chip counts" `Quick test_platform_fair_counts;
      ] );
    ("swarch.properties", qsuite);
  ]
