(* Unit and property tests for the software cache strategies. *)

open Swcache
module Config = Swarch.Config
module Cost = Swarch.Cost
module Ldm = Swarch.Ldm

let cfg = Config.default
(* tolerance class: physical-drift — cache cost arithmetic, 1e-9 *)
let check_float msg a b =
  try Swverify.Tol.check ~what:msg (Swverify.Tol.drift 1e-9) a b
  with Failure m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_ratios () =
  let s = Stats.create () in
  s.Stats.hits <- 9;
  s.Stats.misses <- 1;
  check_float "miss ratio" 0.1 (Stats.miss_ratio s);
  check_float "hit ratio" 0.9 (Stats.hit_ratio s);
  Alcotest.(check int) "accesses" 10 (Stats.accesses s)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "no accesses" 0.0 (Stats.miss_ratio s)

(* ------------------------------------------------------------------ *)
(* Bitmap *)

let test_bitmap_mark_query () =
  let b = Bitmap.create 200 in
  Bitmap.mark b 0;
  Bitmap.mark b 63;
  Bitmap.mark b 64;
  Bitmap.mark b 199;
  Alcotest.(check bool) "bit 0" true (Bitmap.is_marked b 0);
  Alcotest.(check bool) "bit 1" false (Bitmap.is_marked b 1);
  Alcotest.(check bool) "word boundary 63" true (Bitmap.is_marked b 63);
  Alcotest.(check bool) "word boundary 64" true (Bitmap.is_marked b 64);
  Alcotest.(check bool) "last" true (Bitmap.is_marked b 199);
  Alcotest.(check int) "count" 4 (Bitmap.count b)

let test_bitmap_clear () =
  let b = Bitmap.create 100 in
  for i = 0 to 99 do Bitmap.mark b i done;
  Alcotest.(check int) "all set" 100 (Bitmap.count b);
  Bitmap.clear b;
  Alcotest.(check int) "cleared" 0 (Bitmap.count b)

let test_bitmap_iter_ascending () =
  let b = Bitmap.create 50 in
  List.iter (Bitmap.mark b) [ 42; 3; 17 ];
  let seen = ref [] in
  Bitmap.iter_marked b (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "ascending order" [ 3; 17; 42 ] (List.rev !seen)

let test_bitmap_bounds () =
  let b = Bitmap.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitmap: index out of range")
    (fun () -> Bitmap.mark b 10)

let test_bitmap_paper_density () =
  (* Figure 5: one native word records >= 63 lines, i.e. >= 63*8*4 = 2016
     particles with 8 packages of 4 particles per line. *)
  let particles_per_word = Bitmap.bits_per_word * 8 * 4 in
  Alcotest.(check bool) "a word covers >2000 particles" true (particles_per_word >= 2016)

let prop_bitmap_mark_idempotent =
  QCheck.Test.make ~name:"bitmap: marking twice = marking once" ~count:200
    QCheck.(pair (int_range 1 500) (list_of_size (QCheck.Gen.int_range 0 50) (int_range 0 499)))
    (fun (n, ixs) ->
      let n = max n 500 in
      let b1 = Bitmap.create n and b2 = Bitmap.create n in
      List.iter (fun i -> Bitmap.mark b1 i) ixs;
      List.iter (fun i -> Bitmap.mark b2 i; Bitmap.mark b2 i) ixs;
      Bitmap.count b1 = Bitmap.count b2
      && List.for_all (fun i -> Bitmap.is_marked b1 i = Bitmap.is_marked b2 i) ixs)

let prop_bitmap_count_matches_iter =
  QCheck.Test.make ~name:"bitmap: count = length of iter_marked" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 100) (int_range 0 299))
    (fun ixs ->
      let b = Bitmap.create 300 in
      List.iter (Bitmap.mark b) ixs;
      let n = ref 0 in
      Bitmap.iter_marked b (fun _ -> incr n);
      !n = Bitmap.count b)

(* ------------------------------------------------------------------ *)
(* Read_cache *)

let mk_backing n elt_floats =
  Array.init (n * elt_floats) (fun i -> float_of_int i *. 0.5)

let test_rc_returns_backing_values () =
  let backing = mk_backing 256 4 in
  let cost = Cost.create () in
  let rc = Read_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:8 ~n_lines:16 () in
  for i = 0 to 255 do
    for j = 0 to 3 do
      check_float "value through cache" backing.((i * 4) + j) (Read_cache.get rc i j)
    done
  done

let test_rc_sequential_hits () =
  (* Sequential access over one line: 1 miss then 7 hits per line. *)
  let backing = mk_backing 128 4 in
  let cost = Cost.create () in
  let rc = Read_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:8 ~n_lines:16 () in
  for i = 0 to 127 do ignore (Read_cache.touch rc i) done;
  let s = Read_cache.stats rc in
  Alcotest.(check int) "16 misses" 16 s.Stats.misses;
  Alcotest.(check int) "112 hits" 112 s.Stats.hits

let test_rc_repeated_access_hits () =
  let backing = mk_backing 64 4 in
  let cost = Cost.create () in
  let rc = Read_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:8 ~n_lines:16 () in
  ignore (Read_cache.touch rc 5);
  let before = (Read_cache.stats rc).Stats.misses in
  for _ = 1 to 100 do ignore (Read_cache.touch rc 5) done;
  Alcotest.(check int) "no further misses" before (Read_cache.stats rc).Stats.misses

let test_rc_thrashing_conflict () =
  (* Two elements whose memory lines map to the same cache line must
     displace each other in a direct-mapped cache. *)
  let backing = mk_backing 512 4 in
  let cost = Cost.create () in
  let rc = Read_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:8 ~n_lines:16 () in
  (* element 0 -> mem line 0 -> cache line 0; element 1024/8=... use i=0 and i=8*16=128 *)
  for _ = 1 to 10 do
    ignore (Read_cache.touch rc 0);
    ignore (Read_cache.touch rc 128)
  done;
  Alcotest.(check int) "all misses" 20 (Read_cache.stats rc).Stats.misses

let test_rc_miss_charges_dma () =
  let backing = mk_backing 64 4 in
  let cost = Cost.create () in
  let rc = Read_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:8 ~n_lines:16 () in
  ignore (Read_cache.touch rc 0);
  Alcotest.(check int) "one transfer" 1 (Cost.transactions cost);
  check_float "line bytes" (float_of_int (8 * 4 * 4)) cost.Cost.dma_bytes

let test_rc_ldm_accounting () =
  let ldm = Ldm.create ~capacity:65536 in
  let backing = mk_backing 64 4 in
  let cost = Cost.create () in
  let rc = Read_cache.create cfg cost ~ldm ~backing ~elt_floats:4 ~line_elts:8 ~n_lines:16 () in
  let expect = Read_cache.footprint_bytes ~elt_floats:4 ~line_elts:8 ~n_lines:16 in
  Alcotest.(check int) "allocated" expect (Ldm.used ldm);
  Read_cache.release rc;
  Alcotest.(check int) "released" 0 (Ldm.used ldm)

let test_rc_too_big_for_ldm () =
  let ldm = Ldm.create ~capacity:65536 in
  let backing = mk_backing 16384 4 in
  let cost = Cost.create () in
  Alcotest.(check bool) "raises Out_of_ldm" true
    (try
       ignore (Read_cache.create cfg cost ~ldm ~backing ~elt_floats:4 ~line_elts:64 ~n_lines:64 ());
       false
     with Ldm.Out_of_ldm _ -> true)

let test_rc_rejects_non_pow2 () =
  let backing = mk_backing 64 4 in
  let cost = Cost.create () in
  Alcotest.(check bool) "non-pow2 line" true
    (try
       ignore (Read_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:7 ~n_lines:16 ());
       false
     with Invalid_argument _ -> true)

let prop_rc_transparent =
  QCheck.Test.make ~name:"read cache: any access sequence reads backing values" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 255))
    (fun ixs ->
      let backing = mk_backing 256 2 in
      let cost = Cost.create () in
      let rc = Read_cache.create cfg cost ~backing ~elt_floats:2 ~line_elts:4 ~n_lines:8 () in
      List.for_all
        (fun i -> Read_cache.get rc i 0 = backing.(i * 2) && Read_cache.get rc i 1 = backing.((i * 2) + 1))
        ixs)

(* ------------------------------------------------------------------ *)
(* Assoc_cache *)

let test_ac_returns_backing_values () =
  let backing = mk_backing 256 4 in
  let cost = Cost.create () in
  let ac = Assoc_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:8 ~n_sets:8 () in
  for i = 0 to 255 do
    check_float "value" backing.(i * 4) (Assoc_cache.get ac i 0)
  done

let test_ac_fixes_thrashing () =
  (* The alternating pattern that thrashes the direct-mapped cache
     (Section 3.5) hits in a two-way cache after the first round. *)
  let backing = mk_backing 512 4 in
  let cost = Cost.create () in
  let ac = Assoc_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:8 ~n_sets:16 () in
  for _ = 1 to 10 do
    ignore (Assoc_cache.touch ac 0);
    ignore (Assoc_cache.touch ac 128)
  done;
  Alcotest.(check int) "only 2 cold misses" 2 (Assoc_cache.stats ac).Stats.misses

let test_ac_three_way_conflict_still_misses () =
  let backing = mk_backing 3072 4 in
  let cost = Cost.create () in
  let ac = Assoc_cache.create cfg cost ~backing ~elt_floats:4 ~line_elts:8 ~n_sets:8 () in
  (* three streams mapping to set 0: elements 0, 512, 1024 (mem lines 0, 64, 128) *)
  for _ = 1 to 5 do
    ignore (Assoc_cache.touch ac 0);
    ignore (Assoc_cache.touch ac 512);
    ignore (Assoc_cache.touch ac 1024)
  done;
  Alcotest.(check bool) "lru keeps missing" true
    ((Assoc_cache.stats ac).Stats.misses > 10)

let prop_ac_transparent =
  QCheck.Test.make ~name:"assoc cache: any access sequence reads backing values" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 255))
    (fun ixs ->
      let backing = mk_backing 256 2 in
      let cost = Cost.create () in
      let ac = Assoc_cache.create cfg cost ~backing ~elt_floats:2 ~line_elts:4 ~n_sets:4 () in
      List.for_all (fun i -> Assoc_cache.get ac i 0 = backing.(i * 2)) ixs)

let prop_ac_no_worse_than_direct =
  QCheck.Test.make ~name:"assoc cache: never more misses than direct-mapped of same size"
    ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 300) (int_range 0 511))
    (fun ixs ->
      let backing = mk_backing 512 2 in
      let c1 = Cost.create () and c2 = Cost.create () in
      (* same capacity: 16 direct lines vs 8 two-way sets *)
      let rc = Read_cache.create cfg c1 ~backing ~elt_floats:2 ~line_elts:4 ~n_lines:16 () in
      let ac = Assoc_cache.create cfg c2 ~backing ~elt_floats:2 ~line_elts:4 ~n_sets:8 () in
      List.iter (fun i -> ignore (Read_cache.touch rc i); ignore (Assoc_cache.touch ac i)) ixs;
      (* not a theorem for adversarial traces (LRU anomalies exist);
         treat as a regression net with slack *)
      let da = (Assoc_cache.stats ac).Stats.misses
      and dd = (Read_cache.stats rc).Stats.misses in
      da <= dd + (dd / 4) + 12)

(* ------------------------------------------------------------------ *)
(* Write_cache *)

let test_wc_accumulates_into_copy () =
  let copy = Array.make (64 * 3) 0.0 in
  let cost = Cost.create () in
  let wc = Write_cache.create cfg cost ~with_marks:false ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
  Write_cache.init_copy wc;
  Write_cache.accumulate3 wc 10 1.0 2.0 3.0;
  Write_cache.accumulate3 wc 10 1.0 2.0 3.0;
  Write_cache.flush wc;
  check_float "fx" 2.0 copy.(30);
  check_float "fy" 4.0 copy.(31);
  check_float "fz" 6.0 copy.(32)

let test_wc_deferred_updates_are_deferred () =
  (* Repeated updates to one element must not touch main memory until
     displacement or flush. *)
  let copy = Array.make (64 * 3) 0.0 in
  let cost = Cost.create () in
  let wc = Write_cache.create cfg cost ~with_marks:true ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
  for _ = 1 to 1000 do Write_cache.accumulate3 wc 5 0.5 0.5 0.5 done;
  Alcotest.(check int) "no DMA during accumulation" 0 (Cost.transactions cost);
  check_float "still zero in memory" 0.0 copy.(15);
  Write_cache.flush wc;
  check_float "flushed" 500.0 copy.(15);
  Alcotest.(check int) "one writeback" 1 (Write_cache.stats wc).Stats.writebacks

let test_wc_eviction_roundtrip () =
  (* Conflicting lines must write back and later refetch, preserving sums. *)
  let copy = Array.make (256 * 3) 0.0 in
  let cost = Cost.create () in
  let wc = Write_cache.create cfg cost ~with_marks:true ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
  (* elements 0 and 64 share cache line 0 (mem lines 0 and 16). *)
  for _ = 1 to 3 do
    Write_cache.accumulate3 wc 0 1.0 0.0 0.0;
    Write_cache.accumulate3 wc 64 1.0 0.0 0.0
  done;
  Write_cache.flush wc;
  check_float "element 0 sum" 3.0 copy.(0);
  check_float "element 64 sum" 3.0 copy.(64 * 3)

let test_wc_marks_skip_init () =
  (* With marks, a cold line is initialized locally: no DMA fetch. *)
  let copy = Array.make (64 * 3) 0.0 in
  let cost = Cost.create () in
  let wc = Write_cache.create cfg cost ~with_marks:true ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
  Write_cache.accumulate3 wc 0 1.0 1.0 1.0;
  Alcotest.(check int) "cold fill costs nothing" 0 (Cost.transactions cost)

let test_wc_no_marks_always_fetch () =
  let copy = Array.make (64 * 3) 0.0 in
  let cost = Cost.create () in
  let wc = Write_cache.create cfg cost ~with_marks:false ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
  Write_cache.accumulate3 wc 0 1.0 1.0 1.0;
  Alcotest.(check int) "cold fill fetches" 1 (Cost.transactions cost)

let test_wc_mark_records_written_lines () =
  let copy = Array.make (64 * 3) 0.0 in
  let cost = Cost.create () in
  let wc = Write_cache.create cfg cost ~with_marks:true ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
  Write_cache.accumulate3 wc 0 1.0 0.0 0.0;   (* mem line 0 *)
  Write_cache.accumulate3 wc 17 1.0 0.0 0.0;  (* mem line 4 *)
  Write_cache.flush wc;
  match Write_cache.marks wc with
  | None -> Alcotest.fail "marks expected"
  | Some m ->
      Alcotest.(check bool) "line 0 marked" true (Bitmap.is_marked m 0);
      Alcotest.(check bool) "line 4 marked" true (Bitmap.is_marked m 4);
      Alcotest.(check bool) "line 1 untouched" false (Bitmap.is_marked m 1);
      Alcotest.(check int) "exactly two lines" 2 (Bitmap.count m)

let test_wc_marked_refetch_accumulates () =
  (* A line that was written back and comes back must refetch, so the
     second round adds to the first. *)
  let copy = Array.make (256 * 3) 0.0 in
  let cost = Cost.create () in
  let wc = Write_cache.create cfg cost ~with_marks:true ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
  Write_cache.accumulate3 wc 0 1.0 0.0 0.0;
  Write_cache.accumulate3 wc 64 1.0 0.0 0.0;  (* displaces line for elt 0 *)
  Write_cache.accumulate3 wc 0 1.0 0.0 0.0;   (* must refetch elt 0's line *)
  Write_cache.flush wc;
  check_float "accumulated across eviction" 2.0 copy.(0)

let test_wc_init_copy_charges_dma () =
  let copy = Array.make 2048 1.0 in
  let cost = Cost.create () in
  let wc = Write_cache.create cfg cost ~with_marks:false ~copy ~elt_floats:4 ~line_elts:4 ~n_lines:4 () in
  Write_cache.init_copy wc;
  Alcotest.(check bool) "copy zeroed" true (Array.for_all (fun x -> x = 0.0) copy);
  Alcotest.(check int) "2048 floats = 8192 B = 4 blocks" 4 (Cost.transactions cost)

let prop_wc_sum_preserved =
  (* The fundamental invariant of deferred update: after flush, the
     copy holds exactly the sum of all accumulated deltas, for any
     access pattern (including pathological conflict patterns). *)
  QCheck.Test.make ~name:"write cache: flush preserves sums under any pattern" ~count:100
    QCheck.(pair bool (list_of_size (QCheck.Gen.int_range 1 300)
      (pair (int_range 0 127) (float_range (-10.0) 10.0))))
    (fun (with_marks, updates) ->
      let copy = Array.make (128 * 3) 0.0 in
      let expect = Array.make 128 0.0 in
      let cost = Cost.create () in
      let wc = Write_cache.create cfg cost ~with_marks ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
      if not with_marks then Write_cache.init_copy wc;
      List.iter
        (fun (i, d) ->
          expect.(i) <- expect.(i) +. d;
          Write_cache.accumulate wc i 0 d)
        updates;
      Write_cache.flush wc;
      let ok = ref true in
      Array.iteri
        (fun i e -> if Float.abs (copy.(i * 3) -. e) > 1e-9 then ok := false)
        expect;
      !ok)

let prop_wc_marks_never_more_dma =
  QCheck.Test.make ~name:"write cache: marks never cost more DMA than plain" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 127))
    (fun ixs ->
      let run with_marks =
        let copy = Array.make (128 * 3) 0.0 in
        let cost = Cost.create () in
        let wc = Write_cache.create cfg cost ~with_marks ~copy ~elt_floats:3 ~line_elts:4 ~n_lines:4 () in
        if not with_marks then Write_cache.init_copy wc;
        List.iter (fun i -> Write_cache.accumulate3 wc i 1.0 1.0 1.0) ixs;
        Write_cache.flush wc;
        (Cost.transactions cost)
      in
      run true <= run false)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_bitmap_mark_idempotent; prop_bitmap_count_matches_iter;
      prop_rc_transparent; prop_ac_transparent; prop_ac_no_worse_than_direct;
      prop_wc_sum_preserved; prop_wc_marks_never_more_dma ]

let suites =
  [
    ( "swcache.stats",
      [
        Alcotest.test_case "ratios" `Quick test_stats_ratios;
        Alcotest.test_case "empty" `Quick test_stats_empty;
      ] );
    ( "swcache.bitmap",
      [
        Alcotest.test_case "mark/query across words" `Quick test_bitmap_mark_query;
        Alcotest.test_case "clear" `Quick test_bitmap_clear;
        Alcotest.test_case "iter ascending" `Quick test_bitmap_iter_ascending;
        Alcotest.test_case "bounds checked" `Quick test_bitmap_bounds;
        Alcotest.test_case "Fig 5 density" `Quick test_bitmap_paper_density;
      ] );
    ( "swcache.read_cache",
      [
        Alcotest.test_case "transparent reads" `Quick test_rc_returns_backing_values;
        Alcotest.test_case "sequential locality" `Quick test_rc_sequential_hits;
        Alcotest.test_case "repeated access hits" `Quick test_rc_repeated_access_hits;
        Alcotest.test_case "direct-mapped conflicts thrash" `Quick test_rc_thrashing_conflict;
        Alcotest.test_case "miss charges one line DMA" `Quick test_rc_miss_charges_dma;
        Alcotest.test_case "LDM accounting" `Quick test_rc_ldm_accounting;
        Alcotest.test_case "oversized cache rejected by LDM" `Quick test_rc_too_big_for_ldm;
        Alcotest.test_case "non-power-of-two rejected" `Quick test_rc_rejects_non_pow2;
      ] );
    ( "swcache.assoc_cache",
      [
        Alcotest.test_case "transparent reads" `Quick test_ac_returns_backing_values;
        Alcotest.test_case "two-way fixes Fig 3 thrashing" `Quick test_ac_fixes_thrashing;
        Alcotest.test_case "3-way conflict still misses" `Quick test_ac_three_way_conflict_still_misses;
      ] );
    ( "swcache.write_cache",
      [
        Alcotest.test_case "accumulate + flush" `Quick test_wc_accumulates_into_copy;
        Alcotest.test_case "updates are deferred" `Quick test_wc_deferred_updates_are_deferred;
        Alcotest.test_case "eviction round-trips" `Quick test_wc_eviction_roundtrip;
        Alcotest.test_case "marks skip cold fetches" `Quick test_wc_marks_skip_init;
        Alcotest.test_case "plain mode always fetches" `Quick test_wc_no_marks_always_fetch;
        Alcotest.test_case "marks record written lines" `Quick test_wc_mark_records_written_lines;
        Alcotest.test_case "marked refetch accumulates" `Quick test_wc_marked_refetch_accumulates;
        Alcotest.test_case "init_copy charges DMA" `Quick test_wc_init_copy_charges_dma;
      ] );
    ("swcache.properties", qsuite);
  ]
