(* Tests for the communication substrate. *)

open Swcomm

let net = Network.default

let check_pos msg v = Alcotest.(check bool) msg true (v > 0.0)

(* ------------------------------------------------------------------ *)
(* Network *)

let test_rdma_beats_mpi () =
  (* the whole point of Section 3.6 *)
  List.iter
    (fun bytes ->
      let m = Network.message net Network.Mpi ~bytes ~cross_supernode:false in
      let r = Network.message net Network.Rdma ~bytes ~cross_supernode:false in
      Alcotest.(check bool) (Printf.sprintf "rdma faster at %dB" bytes) true (r < m))
    [ 8; 1024; 65536; 1048576 ]

let test_mpi_copy_overhead () =
  (* for large messages the 4-copy overhead dominates the latency gap *)
  let bytes = 4 * 1024 * 1024 in
  let m = Network.message net Network.Mpi ~bytes ~cross_supernode:false in
  let r = Network.message net Network.Rdma ~bytes ~cross_supernode:false in
  let copy_time = 4.0 *. float_of_int bytes /. net.Network.copy_bw in
  Alcotest.(check bool) "gap ~ copy time" true
    (Float.abs (m -. r -. copy_time -. (net.Network.mpi_latency -. net.Network.rdma_latency))
     < 1e-9)

let test_cross_supernode_penalty () =
  let near = Network.message net Network.Rdma ~bytes:100000 ~cross_supernode:false in
  let far = Network.message net Network.Rdma ~bytes:100000 ~cross_supernode:true in
  Alcotest.(check bool) "uplink penalty" true (far > near)

let test_allreduce_log_scaling () =
  let t ranks = Network.allreduce net Network.Rdma ~ranks ~bytes:64 in
  Alcotest.(check bool) "grows with ranks" true (t 64 > t 8);
  (* recursive doubling: 512 ranks is 9 rounds, 8 ranks is 3 *)
  Alcotest.(check bool) "log growth" true (t 512 < 4.0 *. t 8)

let test_allreduce_single_rank_free () =
  Alcotest.(check (float 0.0)) "1 rank" 0.0
    (Network.allreduce net Network.Rdma ~ranks:1 ~bytes:64)

(* ------------------------------------------------------------------ *)
(* Decomp *)

let test_factor3_cubic () =
  let a, b, c = Decomp.factor3 512 in
  Alcotest.(check int) "product" 512 (a * b * c);
  Alcotest.(check (list int)) "8x8x8" [ 8; 8; 8 ] (List.sort compare [ a; b; c ])

let test_factor3_awkward () =
  let a, b, c = Decomp.factor3 12 in
  Alcotest.(check int) "product" 12 (a * b * c);
  Alcotest.(check bool) "near-cubic" true (max a (max b c) <= 4)

let test_halo_partners_by_dim () =
  Alcotest.(check int) "1 rank" 0 (Decomp.halo_partners (Decomp.create 1));
  Alcotest.(check int) "2 ranks: 1D" 2 (Decomp.halo_partners (Decomp.create 2));
  Alcotest.(check int) "4 ranks: 2D" 8 (Decomp.halo_partners (Decomp.create 4));
  Alcotest.(check int) "64 ranks: 3D" 26 (Decomp.halo_partners (Decomp.create 64))

let test_halo_atoms_slab () =
  let h = Decomp.halo_atoms ~atoms_per_rank:1000 ~rcut:1.0 ~domain_edge:4.0 in
  Alcotest.(check int) "quarter slab" 250 h;
  let h2 = Decomp.halo_atoms ~atoms_per_rank:1000 ~rcut:5.0 ~domain_edge:4.0 in
  Alcotest.(check int) "clamped to all" 1000 h2

(* ------------------------------------------------------------------ *)
(* Step_comm / Scaling *)

let params ?(transport = Network.Rdma) ?(ranks = 64) () =
  {
    Step_comm.net;
    transport;
    total_atoms = 640_000;
    ranks;
    rcut = 1.0;
    box_edge = 26.7;
    pme_grid = 224;
    compute_time = 1e-3;
    faults = None;
  }

let test_step_comm_single_rank_zero () =
  let b = Step_comm.compute (params ~ranks:1 ()) in
  Alcotest.(check (float 0.0)) "no comm alone" 0.0 (Step_comm.total b)

let test_step_comm_positive () =
  let b = Step_comm.compute (params ()) in
  check_pos "halo" b.Step_comm.halo;
  check_pos "pme" b.Step_comm.pme;
  check_pos "energies" b.Step_comm.energies;
  check_pos "dd" b.Step_comm.domain_decomp

let test_step_comm_rdma_cheaper () =
  let m = Step_comm.total (Step_comm.compute (params ~transport:Network.Mpi ())) in
  let r = Step_comm.total (Step_comm.compute (params ~transport:Network.Rdma ())) in
  Alcotest.(check bool) "rdma cheaper per step" true (r < m)

let linear_compute per_atom atoms = per_atom *. float_of_int atoms

let test_strong_scaling_monotone_decline () =
  let compute = linear_compute 3.6e-7 in
  let pts =
    Scaling.strong ~compute ~total_atoms:48000 ~rcut:1.0 ~box_edge:11.3
      [ 4; 8; 16; 32; 64; 128; 256; 512 ]
  in
  let effs = List.map (fun p -> p.Scaling.efficiency) pts in
  (* efficiency starts at 1 and declines (weakly) *)
  Alcotest.(check (float 1e-9)) "baseline 1.0" 1.0 (List.hd effs);
  List.iteri
    (fun i e ->
      if i > 0 then
        Alcotest.(check bool) "declining" true (e <= List.nth effs (i - 1) +. 0.02))
    effs;
  (* paper endpoint: ~0.47 at 512 CGs *)
  let last = List.nth effs (List.length effs - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "512-CG efficiency ~0.47 (got %.2f)" last)
    true
    (last > 0.30 && last < 0.60)

let test_strong_scaling_speedup_grows () =
  let compute = linear_compute 3.6e-7 in
  let pts =
    Scaling.strong ~compute ~total_atoms:48000 ~rcut:1.0 ~box_edge:11.3
      [ 4; 64; 512 ]
  in
  let sps = List.map (fun p -> p.Scaling.speedup) pts in
  Alcotest.(check bool) "speedup grows" true
    (List.nth sps 2 > List.nth sps 1 && List.nth sps 1 > List.hd sps)

let test_weak_scaling_high_efficiency () =
  let compute = linear_compute 3.6e-7 in
  let pts =
    Scaling.weak ~compute ~atoms_per_cg:10000 ~rcut:1.0 ~box_edge_per_cg:4.64
      [ 4; 8; 16; 32; 64; 128; 256; 512 ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "weak eff at %d CGs in [0.8, 1.01]" p.Scaling.cgs)
        true
        (p.Scaling.efficiency > 0.8 && p.Scaling.efficiency <= 1.01))
    pts;
  (* weak efficiency stays above strong at the far end *)
  let weak512 = (List.nth pts 7).Scaling.efficiency in
  Alcotest.(check bool) "weak 512 ~0.87-0.95" true (weak512 > 0.8 && weak512 < 0.99)

let prop_comm_grows_with_ranks =
  QCheck.Test.make ~name:"comm: more ranks never cheaper (same system, >=8)" ~count:50
    QCheck.(pair (int_range 3 8) (int_range 100000 2000000))
    (fun (log_r, atoms) ->
      let r1 = 1 lsl log_r and r2 = 1 lsl (log_r + 1) in
      let t r =
        Step_comm.total
          (Step_comm.compute
             {
               Step_comm.net;
               transport = Network.Rdma;
               total_atoms = atoms;
               ranks = r;
               rcut = 1.0;
               box_edge = 20.0;
               pme_grid = 128;
               compute_time = 0.0;
               faults = None;
             })
      in
      (* halo per rank shrinks but collectives grow; the total
         communication across fixed work should not drop sharply *)
      t r2 > 0.5 *. t r1)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_comm_grows_with_ranks ]

let suites =
  [
    ( "swcomm.network",
      [
        Alcotest.test_case "RDMA beats MPI" `Quick test_rdma_beats_mpi;
        Alcotest.test_case "MPI pays 4 copies" `Quick test_mpi_copy_overhead;
        Alcotest.test_case "supernode crossing penalty" `Quick test_cross_supernode_penalty;
        Alcotest.test_case "allreduce log scaling" `Quick test_allreduce_log_scaling;
        Alcotest.test_case "allreduce trivial at 1 rank" `Quick test_allreduce_single_rank_free;
      ] );
    ( "swcomm.decomp",
      [
        Alcotest.test_case "factor3 512 = 8x8x8" `Quick test_factor3_cubic;
        Alcotest.test_case "factor3 awkward" `Quick test_factor3_awkward;
        Alcotest.test_case "halo partners by dimensionality" `Quick test_halo_partners_by_dim;
        Alcotest.test_case "halo slab estimate" `Quick test_halo_atoms_slab;
      ] );
    ( "swcomm.step",
      [
        Alcotest.test_case "single rank free" `Quick test_step_comm_single_rank_zero;
        Alcotest.test_case "all components positive" `Quick test_step_comm_positive;
        Alcotest.test_case "RDMA cheaper per step" `Quick test_step_comm_rdma_cheaper;
      ] );
    ( "swcomm.scaling",
      [
        Alcotest.test_case "strong: monotone decline to ~0.47" `Quick test_strong_scaling_monotone_decline;
        Alcotest.test_case "strong: speedup grows" `Quick test_strong_scaling_speedup_grows;
        Alcotest.test_case "weak: stays high" `Quick test_weak_scaling_high_efficiency;
      ] );
    ("swcomm.properties", qsuite);
  ]
