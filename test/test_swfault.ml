(* Tests for swfault: deterministic fault injection and recovery.

   The properties the subsystem promises, in rough order: the
   counter-based RNG is replay-stable and stream-independent; plans
   round-trip through their string form and reject nonsense; the zero
   plan is invisible (bit-identical schedules and trajectories); fault
   runs are deterministic per seed; recovery restores the exact
   fault-free physics (rollback, restart, re-striping); and the priced
   checkpoint-interval trade-off has the textbook U shape. *)

module F = Swfault
module S = Swsched
module K = Swgmx.Kernel_common

let cfg = Swarch.Config.default

(* tolerance class: physical-drift — replayed-time sums; rel 1e-9 with
   an absolute floor of 1e-15 for exactly-zero expectations *)
let check_close name expected got =
  try
    Swverify.Tol.check ~what:name
      (Swverify.Tol.rel_abs ~rel:1e-9 ~abs:1e-15)
      expected got
  with Failure m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_range_and_determinism () =
  for i = 0 to 999 do
    let u = F.Rng.uniform ~seed:7 ~stream:1 ~index:i in
    if not (u >= 0.0 && u < 1.0) then
      Alcotest.failf "uniform out of [0,1): %.17g at index %d" u i;
    let u' = F.Rng.uniform ~seed:7 ~stream:1 ~index:i in
    Alcotest.(check (float 0.0)) "replay-stable" u u'
  done

let test_rng_streams_independent () =
  (* distinct (seed, stream) pairs must not produce the same sequence *)
  let seq seed stream =
    List.init 64 (fun i -> F.Rng.uniform ~seed ~stream ~index:i)
  in
  Alcotest.(check bool) "streams differ" true (seq 7 1 <> seq 7 2);
  Alcotest.(check bool) "seeds differ" true (seq 7 1 <> seq 8 1);
  (* and the values actually spread over the interval *)
  let s = seq 7 1 in
  let mean = List.fold_left ( +. ) 0.0 s /. 64.0 in
  Alcotest.(check bool) "mean sane" true (mean > 0.3 && mean < 0.7)

(* ------------------------------------------------------------------ *)
(* Plan *)

let test_plan_roundtrip () =
  let spec =
    "dma_error=0.1,dma_backoff=1e-06,link_degrade=1.5,link_drop=0.05,\
     ldm_flip=0.2,cpe_dead=9,cpe_dead=17,cpe_slow=3:1.5,cpe_stall=4:2e-06"
  in
  let p = F.Plan.of_string spec in
  let p' = F.Plan.of_string (F.Plan.to_string p) in
  Alcotest.(check bool) "to_string round-trips" true (p = p');
  Alcotest.(check bool) "not zero" true (not (F.Plan.is_zero p));
  Alcotest.(check bool) "empty spec is zero" true
    (F.Plan.is_zero (F.Plan.of_string ""));
  Alcotest.(check bool) "zero is zero" true (F.Plan.is_zero F.Plan.zero)

let test_plan_rejects () =
  let rejects spec =
    match F.Plan.of_string spec with
    | _ -> Alcotest.failf "spec %S should be rejected" spec
    | exception Invalid_argument _ -> ()
  in
  rejects "dma_error=1.5";
  rejects "dma_error=-0.1";
  rejects "link_degrade=0.5";
  rejects "cpe_dead=64";
  rejects "cpe_dead=-1";
  rejects "cpe_dead=3,cpe_dead=3";
  rejects "cpe_slow=3:0";
  rejects "cpe_stall=3:-1e-6";
  rejects "dma_retries=0";
  rejects "no_such_key=1";
  rejects "dma_error";
  rejects "dma_error=abc";
  (* killing every CPE leaves nothing to re-stripe onto *)
  let all = String.concat "," (List.init 64 (fun i -> Fmt.str "cpe_dead=%d" i)) in
  rejects all

(* ------------------------------------------------------------------ *)
(* Error *)

let test_error_guard () =
  (match
     F.Error.guard ~phase:"force" ~cpe:7 (fun () ->
         ignore (Swarch.Ldm.alloc (Swarch.Ldm.create ~capacity:64) 1024);
         ())
   with
  | () -> Alcotest.fail "guard should re-raise Out_of_ldm as Fault"
  | exception F.Error.Fault info ->
      Alcotest.(check string) "phase" "force" info.F.Error.phase;
      Alcotest.(check (option int)) "cpe" (Some 7) info.F.Error.cpe);
  match F.Error.guard ~phase:"x" (fun () -> 41 + 1) with
  | v -> Alcotest.(check int) "value passes through" 42 v

(* ------------------------------------------------------------------ *)
(* Injector *)

let test_injector_rates_nest () =
  (* the set of (id, attempt) pairs failing at a low rate is a subset
     of the set failing at a higher rate: overhead grows monotonically
     with the rate by construction *)
  let strikes rate =
    let inj =
      F.Injector.create ~seed:5
        { F.Plan.zero with F.Plan.dma_error_rate = rate }
    in
    List.init 500 (fun id -> F.Injector.dma_error inj ~id ~attempt:0)
  in
  let lo = strikes 0.05 and hi = strikes 0.2 in
  List.iter2
    (fun l h ->
      if l && not h then Alcotest.fail "low-rate fault missing at high rate")
    lo hi;
  let count l = List.length (List.filter Fun.id l) in
  Alcotest.(check bool) "higher rate strikes more" true (count hi > count lo);
  Alcotest.(check int) "zero rate never strikes" 0 (count (strikes 0.0))

let test_injector_flip_consumed () =
  let inj =
    F.Injector.create ~seed:5 { F.Plan.zero with F.Plan.ldm_flip_rate = 1.0 }
  in
  Alcotest.(check bool) "first query strikes" true
    (F.Injector.ldm_flip inj ~step:3);
  (* the replayed step must not be struck again, or rollback loops *)
  Alcotest.(check bool) "same step never strikes twice" false
    (F.Injector.ldm_flip inj ~step:3)

(* ------------------------------------------------------------------ *)
(* Schedule replay under faults *)

let record_mark particles =
  let p = Swbench.Common.prepare ~particles () in
  let cg = Swarch.Core_group.create cfg in
  let r = S.Recorder.create cfg in
  let spec = Swgmx.Kernel_cpe.spec_of_variant Swgmx.Variant.Mark in
  ignore
    (Swgmx.Kernel_cpe.run ~sched:r p.Swbench.Common.sys p.Swbench.Common.pairs
       cg spec);
  r

let test_schedule_zero_plan_invisible () =
  let r = record_mark 600 in
  let base = S.Schedule.run ~buffers:2 cfg r in
  let inj = F.Injector.create ~seed:5 F.Plan.zero in
  let z = S.Schedule.run ~buffers:2 ~faults:inj cfg r in
  Alcotest.(check bool) "zero plan is bit-invisible" true (base = z);
  Alcotest.(check int) "no retries" 0 z.S.Schedule.dma_retries

let test_schedule_faults_deterministic () =
  let r = record_mark 600 in
  let run () =
    let inj =
      F.Injector.create ~seed:5
        { F.Plan.zero with F.Plan.dma_error_rate = 0.1 }
    in
    S.Schedule.run ~buffers:2 ~faults:inj cfg r
  in
  let s1 = run () and s2 = run () in
  Alcotest.(check bool) "same seed, bit-identical schedule" true (s1 = s2);
  Alcotest.(check bool) "errors actually injected" true
    (s1.S.Schedule.dma_retries > 0)

let test_schedule_overhead_monotone () =
  let r = record_mark 600 in
  let elapsed rate =
    let inj =
      F.Injector.create ~seed:5
        { F.Plan.zero with F.Plan.dma_error_rate = rate }
    in
    (S.Schedule.run ~buffers:2 ~faults:inj cfg r).S.Schedule.elapsed
  in
  let prev = ref (elapsed 0.0) in
  List.iter
    (fun rate ->
      let e = elapsed rate in
      if e < !prev -. 1e-15 then
        Alcotest.failf "elapsed shrank at rate %g: %.12g < %.12g" rate e !prev;
      prev := e)
    [ 0.02; 0.05; 0.1; 0.2 ]

let test_schedule_degraded_cpe_slower () =
  let r = record_mark 600 in
  let base = (S.Schedule.run ~buffers:2 cfg r).S.Schedule.elapsed in
  let inj =
    F.Injector.create ~seed:5
      { F.Plan.zero with F.Plan.cpe_slowdown = [ (0, 2.0) ];
        F.Plan.cpe_stall_s = [ (1, 1e-5) ] }
  in
  let slow = (S.Schedule.run ~buffers:2 ~faults:inj cfg r).S.Schedule.elapsed in
  Alcotest.(check bool) "degraded CPEs stretch the schedule" true (slow > base)

(* ------------------------------------------------------------------ *)
(* Kernel: dead-CPE re-striping *)

let test_dead_cpe_restripe () =
  let p = Swbench.Common.prepare ~particles:600 () in
  let cg_b = Swarch.Core_group.create cfg in
  let base =
    Swgmx.Kernel.run p.Swbench.Common.sys p.Swbench.Common.pairs cg_b
      Swgmx.Variant.Mark
  in
  let inj =
    F.Injector.create ~seed:5
      { F.Plan.zero with F.Plan.cpe_dead = [ 9; 17 ] }
  in
  let cg_d = Swarch.Core_group.create cfg in
  let dead =
    Swgmx.Kernel.run ~faults:inj p.Swbench.Common.sys p.Swbench.Common.pairs
      cg_d Swgmx.Variant.Mark
  in
  (* the survivors cover every slab: same pairs, energies equal up to
     summation order *)
  Alcotest.(check int) "pair count preserved"
    base.Swgmx.Kernel.result.K.pairs_in_cutoff
    dead.Swgmx.Kernel.result.K.pairs_in_cutoff;
  check_close "e_lj preserved" (K.e_lj base.Swgmx.Kernel.result)
    (K.e_lj dead.Swgmx.Kernel.result);
  check_close "e_coul preserved" (K.e_coul base.Swgmx.Kernel.result)
    (K.e_coul dead.Swgmx.Kernel.result);
  (* dead CPEs did no work, survivors did all of it *)
  let cost (c : Swarch.Cpe.t) = c.Swarch.Cpe.cost.Swarch.Cost.scalar_flops in
  Alcotest.(check (float 0.0)) "cpe 9 idle" 0.0
    (cost cg_d.Swarch.Core_group.cpes.(9));
  Alcotest.(check (float 0.0)) "cpe 17 idle" 0.0
    (cost cg_d.Swarch.Core_group.cpes.(17));
  Alcotest.(check bool) "63-wide run is no faster" true
    (dead.Swgmx.Kernel.elapsed >= base.Swgmx.Kernel.elapsed -. 1e-15)

(* ------------------------------------------------------------------ *)
(* Engine: rollback, restart, zero-plan identity *)

let protected ?faults ?checkpoint_every ?restart ?on_checkpoint steps =
  Swgmx.Engine.simulate_protected ?faults ?checkpoint_every ?restart
    ?on_checkpoint ~molecules:8 ~seed:42 ~steps ~sample_every:2 ()

let baseline steps =
  Swgmx.Engine.simulate_state ~molecules:8 ~seed:42 ~steps ~sample_every:2 ()

let check_same_trajectory name (s1, (st1 : Mdcore.Md_state.t))
    (s2, (st2 : Mdcore.Md_state.t)) =
  Alcotest.(check int) (name ^ ": sample count") (List.length s1)
    (List.length s2);
  List.iter2
    (fun (a : Swgmx.Engine.sample) (b : Swgmx.Engine.sample) ->
      Alcotest.(check int) (name ^ ": step") a.Swgmx.Engine.step
        b.Swgmx.Engine.step;
      Alcotest.(check (float 0.0))
        (name ^ ": energy bit-identical")
        a.Swgmx.Engine.total_energy b.Swgmx.Engine.total_energy)
    s1 s2;
  Alcotest.(check bool) (name ^ ": positions bit-identical") true
    (st1.Mdcore.Md_state.pos = st2.Mdcore.Md_state.pos);
  Alcotest.(check bool) (name ^ ": velocities bit-identical") true
    (st1.Mdcore.Md_state.vel = st2.Mdcore.Md_state.vel)

let test_engine_rollback_exact () =
  let samples, st = baseline 12 in
  let inj =
    F.Injector.create ~seed:11
      { F.Plan.zero with F.Plan.ldm_flip_rate = 0.6 }
  in
  let fs, fst_, stats = protected ~faults:inj 12 in
  Alcotest.(check bool) "flips forced rollbacks" true
    (stats.F.Recovery.rollbacks > 0);
  Alcotest.(check bool) "rollbacks replayed steps" true
    (stats.F.Recovery.replayed_steps > 0);
  check_same_trajectory "rollback" (samples, st) (fs, fst_);
  (* a different injector seed flips at different steps but lands on
     the same physics *)
  let inj2 =
    F.Injector.create ~seed:12
      { F.Plan.zero with F.Plan.ldm_flip_rate = 0.6 }
  in
  let fs2, fst2, stats2 = protected ~faults:inj2 12 in
  Alcotest.(check bool) "seed 12 also rolled back" true
    (stats2.F.Recovery.rollbacks > 0);
  check_same_trajectory "rollback seed 12" (samples, st) (fs2, fst2)

let test_engine_restart_exact () =
  let full_s, full_st = baseline 20 in
  let cks = ref [] in
  let _, _, stats =
    protected ~checkpoint_every:10 ~on_checkpoint:(fun ck -> cks := ck :: !cks)
      20
  in
  Alcotest.(check int) "three checkpoints (0, 10, 20)" 3
    stats.F.Recovery.checkpoints;
  let mid =
    List.find (fun ck -> ck.Swio.Checkpoint.step = 10) !cks
  in
  (* serialize/deserialize on the way, as the CLI does *)
  let mid = Swio.Checkpoint.of_string (Swio.Checkpoint.to_string mid) in
  let rs, rst, _ = protected ~restart:mid 20 in
  let tail = List.filter (fun (s : Swgmx.Engine.sample) -> s.Swgmx.Engine.step > 10) full_s in
  check_same_trajectory "restart tail" (tail, full_st) (rs, rst)

let test_engine_zero_plan_invisible () =
  let samples, st = baseline 10 in
  let inj = F.Injector.create ~seed:11 F.Plan.zero in
  let fs, fst_, stats = protected ~faults:inj 10 in
  Alcotest.(check int) "no rollbacks" 0 stats.F.Recovery.rollbacks;
  check_same_trajectory "zero plan" (samples, st) (fs, fst_)

(* ------------------------------------------------------------------ *)
(* Fault track tracing *)

let test_fault_track_paired () =
  Swtrace.Trace.enable ();
  Fun.protect ~finally:Swtrace.Trace.disable @@ fun () ->
  let inj =
    F.Injector.create ~seed:11
      { F.Plan.zero with F.Plan.ldm_flip_rate = 0.6 }
  in
  let _, _, stats = protected ~faults:inj 12 in
  Alcotest.(check bool) "rollbacks happened" true
    (stats.F.Recovery.rollbacks > 0);
  let events = Swtrace.Trace.events () in
  let fault_events =
    List.filter
      (fun (e : Swtrace.Event.t) -> e.Swtrace.Event.cat = "fault")
      events
  in
  Alcotest.(check bool) "fault track populated" true (fault_events <> []);
  let id_of (e : Swtrace.Event.t) = List.assoc "id" e.Swtrace.Event.args in
  let with_prefix p =
    List.filter
      (fun (e : Swtrace.Event.t) ->
        String.length e.Swtrace.Event.name >= String.length p
        && String.sub e.Swtrace.Event.name 0 (String.length p) = p)
      fault_events
  in
  let injects = with_prefix "inject:" and recovers = with_prefix "recover:" in
  Alcotest.(check bool) "injections recorded" true (injects <> []);
  List.iter
    (fun inj_ev ->
      let id = id_of inj_ev in
      if not (List.exists (fun r -> id_of r = id) recovers) then
        Alcotest.failf "injection id %g has no recovery" id)
    injects;
  let s = F.Injector.stats inj in
  Alcotest.(check int) "stats agree with track"
    s.F.Injector.injections s.F.Injector.recoveries

(* ------------------------------------------------------------------ *)
(* Recovery pricing *)

let test_recovery_price_ushape () =
  let price interval =
    (F.Recovery.price ~steps:100000 ~interval ~fault_rate:1e-3 ~step_s:1e-3
       ~ckpt_s:5e-3 ~restart_s:1e-2)
      .F.Recovery.total_s
  in
  let opt =
    F.Recovery.optimal_interval ~fault_rate:1e-3 ~step_s:1e-3 ~ckpt_s:5e-3
  in
  Alcotest.(check bool) "optimum in sane range" true (opt > 1 && opt < 100000);
  let at_opt = price opt in
  Alcotest.(check bool) "checkpointing too often costs more" true
    (price 1 > at_opt);
  Alcotest.(check bool) "checkpointing too rarely costs more" true
    (price 100000 > at_opt);
  let p =
    F.Recovery.price ~steps:1000 ~interval:100 ~fault_rate:0.0 ~step_s:1e-3
      ~ckpt_s:5e-3 ~restart_s:1e-2
  in
  check_close "no faults, no rework" 0.0 p.F.Recovery.rework_s;
  check_close "total = compute + checkpoints"
    (p.F.Recovery.compute_s +. p.F.Recovery.checkpoint_s)
    p.F.Recovery.total_s

let suites =
  [
    ( "swfault",
      [
        Alcotest.test_case "rng: range + determinism" `Quick
          test_rng_range_and_determinism;
        Alcotest.test_case "rng: stream independence" `Quick
          test_rng_streams_independent;
        Alcotest.test_case "plan: round-trip" `Quick test_plan_roundtrip;
        Alcotest.test_case "plan: rejects nonsense" `Quick test_plan_rejects;
        Alcotest.test_case "error: structured guard" `Quick test_error_guard;
        Alcotest.test_case "injector: rates nest" `Quick
          test_injector_rates_nest;
        Alcotest.test_case "injector: flip consumed" `Quick
          test_injector_flip_consumed;
        Alcotest.test_case "sched: zero plan invisible" `Quick
          test_schedule_zero_plan_invisible;
        Alcotest.test_case "sched: faults deterministic" `Quick
          test_schedule_faults_deterministic;
        Alcotest.test_case "sched: overhead monotone in rate" `Quick
          test_schedule_overhead_monotone;
        Alcotest.test_case "sched: degraded CPEs slower" `Quick
          test_schedule_degraded_cpe_slower;
        Alcotest.test_case "kernel: dead CPE re-striped" `Quick
          test_dead_cpe_restripe;
        Alcotest.test_case "engine: rollback restores physics" `Quick
          test_engine_rollback_exact;
        Alcotest.test_case "engine: restart bit-identical" `Quick
          test_engine_restart_exact;
        Alcotest.test_case "engine: zero plan invisible" `Quick
          test_engine_zero_plan_invisible;
        Alcotest.test_case "trace: fault track paired" `Quick
          test_fault_track_paired;
        Alcotest.test_case "recovery: priced U-shape" `Quick
          test_recovery_price_ushape;
      ] );
  ]
