(* Tests for the optimized SW kernels: every variant must reproduce the
   double-precision reference physics within mixed-precision tolerance,
   and the cost model must show the paper's qualitative behaviour. *)

open Swgmx
module Md = Mdcore
module K = Kernel_common

let cfg = Swarch.Config.default

(* a reproducible test system: water box + pair list + system snapshot *)
let setup ?(molecules = 40) ?(seed = 7) ?(elec = Md.Nonbonded.Reaction_field) () =
  let st = Md.Water.build ~molecules ~seed () in
  let n = Md.Md_state.n_atoms st in
  let box = st.Md.Md_state.box in
  let rcut = Float.min 0.9 (0.45 *. Md.Box.min_edge box) in
  let params = { Md.Nonbonded.rcut; elec } in
  let cl = Md.Cluster.build box st.Md.Md_state.pos n in
  let pairs = Md.Pair_list.build box cl ~pos:st.Md.Md_state.pos ~rlist:rcut () in
  let sys =
    K.make cfg ~box ~params ~cl ~topo:st.Md.Md_state.topo
      ~ff:st.Md.Md_state.ff ~pos:st.Md.Md_state.pos
  in
  (st, sys, pairs)

(* reference forces and energies from the double-precision engine *)
let reference st sys pairs =
  Md.Md_state.clear_forces st;
  let e = Md.Energy.create () in
  let n_pairs = Md.Nonbonded.compute st sys.K.cl pairs sys.K.params e in
  (Md.Fbuf.to_array st.Md.Md_state.force, e, n_pairs)

let kernel_forces st sys outcome =
  let f = Md.Fbuf.create (3 * Md.Md_state.n_atoms st) in
  K.scatter_forces sys outcome.Kernel.result f;
  Md.Fbuf.to_array f

let max_abs arr = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 arr

(* tolerance class: ulp-budget at mixed-precision scale — the kernels
   round through single precision, so [tol] of the force scale is the
   reassociation envelope, not drift.  The swverify buffer comparator
   reports the offender population and ULP histogram on failure. *)
let check_forces_close ~tol name ref_f got_f =
  let scale = Float.max 1.0 (max_abs ref_f) in
  try
    Swverify.Buf.check_arrays ~what:name
      (Swverify.Tol.rel_abs ~rel:0.0 ~abs:(tol *. scale))
      ref_f got_f
  with Failure m -> Alcotest.fail m

let check_energy_close ~tol name a b =
  try Swverify.Tol.check ~what:name (Swverify.Tol.drift tol) a b
  with Failure m -> Alcotest.fail m

(* mixed precision: single rounding per operation, sums over thousands
   of pairs -> allow 1e-4 of the force scale *)
let tol = 2e-4

let test_variant_matches_reference variant () =
  let st, sys, pairs = setup () in
  let ref_f, ref_e, ref_pairs = reference st sys pairs in
  let cg = Swarch.Core_group.create cfg in
  let outcome = Kernel.run sys pairs cg variant in
  let f = kernel_forces st sys outcome in
  check_forces_close ~tol (Variant.name variant) ref_f f;
  check_energy_close ~tol (Variant.name variant) ref_e.Md.Energy.lj
    (K.e_lj outcome.Kernel.result);
  check_energy_close ~tol (Variant.name variant) ref_e.Md.Energy.coulomb_sr
    (K.e_coul outcome.Kernel.result);
  (* RCA counts each cross-cluster pair twice *)
  if variant <> Variant.Rca then
    Alcotest.(check int)
      (Variant.name variant ^ " pair count")
      ref_pairs outcome.Kernel.result.K.pairs_in_cutoff

let test_variant_matches_reference_ewald variant () =
  let beta = Md.Coulomb.ewald_beta ~rc:0.48 ~tolerance:1e-4 in
  let st, sys, pairs = setup ~elec:(Md.Nonbonded.Ewald_real beta) () in
  let ref_f, ref_e, _ = reference st sys pairs in
  let cg = Swarch.Core_group.create cfg in
  let outcome = Kernel.run sys pairs cg variant in
  let f = kernel_forces st sys outcome in
  check_forces_close ~tol (Variant.name variant ^ "/ewald") ref_f f;
  check_energy_close ~tol:1e-3 (Variant.name variant ^ "/ewald")
    ref_e.Md.Energy.coulomb_sr (K.e_coul outcome.Kernel.result)

(* ------------------------------------------------------------------ *)
(* Package *)

let test_package_layouts_agree () =
  let st, sys, _ = setup ~molecules:10 () in
  ignore st;
  for c = 0 to sys.K.n_clusters - 1 do
    for m = 0 to Md.Cluster.size - 1 do
      let base = c * Package.floats in
      List.iter
        (fun (name, f) ->
          let a = f ~layout:Package.Aos sys.K.pkg_aos base m
          and s = f ~layout:Package.Soa sys.K.pkg_soa base m in
          if a <> s then Alcotest.failf "package %s mismatch at %d.%d" name c m)
        [ ("x", Package.x); ("y", Package.y); ("z", Package.z); ("q", Package.charge) ]
    done
  done

let test_package_padding_zero () =
  (* 10 molecules = 30 atoms = 7.5 clusters: the last cluster has pads *)
  let _, sys, _ = setup ~molecules:10 () in
  let nc = sys.K.n_clusters in
  let last = nc - 1 in
  let cnt = Md.Cluster.count sys.K.cl last in
  if cnt < Md.Cluster.size then begin
    let base = last * Package.floats in
    for m = cnt to Md.Cluster.size - 1 do
      Alcotest.(check (float 0.0)) "pad charge zero" 0.0
        (Package.charge ~layout:Package.Aos sys.K.pkg_aos base m)
    done
  end
  else Alcotest.fail "expected a padded cluster"

let test_package_bytes () =
  Alcotest.(check int) "package is 96 B" 96 Package.bytes;
  (* a cache line of 8 packages is ~the 800 B transfer of Section 3.1 *)
  Alcotest.(check int) "line is 768 B" 768 (8 * Package.bytes)

(* ------------------------------------------------------------------ *)
(* Exclusion masks *)

let test_excl_mask_symmetry () =
  let _, sys, _ = setup ~molecules:20 () in
  (* every excluded topology pair must be reflected in a mask bit *)
  let topo = sys.K.topo in
  Array.iteri
    (fun a partners ->
      Array.iter
        (fun b ->
          let sa = sys.K.cl.Md.Cluster.inv.(a) and sb = sys.K.cl.Md.Cluster.inv.(b) in
          let ca = sa / 4 and cb = sb / 4 and ma = sa mod 4 and mb = sb mod 4 in
          let mask = K.excl_mask sys (min ca cb) (max ca cb) in
          let bit = if ca <= cb then (4 * ma) + mb else (4 * mb) + ma in
          if mask land (1 lsl bit) = 0 then
            Alcotest.failf "exclusion %d-%d not masked" a b)
        partners)
    topo.Md.Topology.exclusions

(* ------------------------------------------------------------------ *)
(* Cost-model behaviour *)

let run_variant sys pairs variant =
  let cg = Swarch.Core_group.create cfg in
  Kernel.run sys pairs cg variant

let test_fig8_ordering () =
  (* larger box so cache locality resembles the benchmark *)
  let _, sys, pairs = setup ~molecules:320 ~seed:11 () in
  let t v = (run_variant sys pairs v).Kernel.elapsed in
  let t_ori = t Variant.Ori
  and t_pkg = t Variant.Pkg
  and t_cache = t Variant.Cache
  and t_vec = t Variant.Vec
  and t_mark = t Variant.Mark in
  Alcotest.(check bool) "Ori slowest" true (t_ori > t_pkg);
  Alcotest.(check bool) "caches beat Pkg" true (t_pkg > t_cache);
  Alcotest.(check bool) "vectorization beats Cache" true (t_cache > t_vec);
  Alcotest.(check bool) "marks beat Vec" true (t_vec > t_mark)

let test_read_cache_miss_ratio_low () =
  (* the paper reports <15% miss in the force kernel *)
  let _, sys, pairs = setup ~molecules:320 ~seed:13 () in
  let outcome = run_variant sys pairs Variant.Mark in
  match outcome.Kernel.stats with
  | Some { Kernel_cpe.read_stats = Some s; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "read miss %.1f%% < 15%%" (100.0 *. Swcache.Stats.miss_ratio s))
        true
        (Swcache.Stats.miss_ratio s < 0.15)
  | _ -> Alcotest.fail "expected read-cache stats"

let test_mark_reduces_dma () =
  let _, sys, pairs = setup ~molecules:160 ~seed:17 () in
  let cg1 = Swarch.Core_group.create cfg in
  ignore (Kernel.run sys pairs cg1 Variant.Rma);
  let dma_rma = (Swarch.Core_group.total_cost cg1).Swarch.Cost.dma_bytes in
  let cg2 = Swarch.Core_group.create cfg in
  ignore (Kernel.run sys pairs cg2 Variant.Mark);
  let dma_mark = (Swarch.Core_group.total_cost cg2).Swarch.Cost.dma_bytes in
  Alcotest.(check bool) "marks move fewer bytes" true (dma_mark < dma_rma)

let test_mark_stats_show_meaningless_copies () =
  (* needs a box big enough that a CPE's copy window spans whole cell
     planes it never touches — the "meaningless copies" of Section 3.3 *)
  let _, sys, pairs = setup ~molecules:500 ~seed:19 () in
  let outcome = run_variant sys pairs Variant.Mark in
  match outcome.Kernel.stats with
  | Some s ->
      Alcotest.(check bool) "some lines marked" true (s.Kernel_cpe.marked_lines > 0);
      Alcotest.(check bool) "not all lines marked" true
        (s.Kernel_cpe.marked_lines < s.Kernel_cpe.total_lines)
  | None -> Alcotest.fail "expected stats"

let test_rca_doubles_computation () =
  let _, sys, pairs = setup ~molecules:80 ~seed:23 () in
  let cg_rca = Swarch.Core_group.create cfg in
  ignore (Kernel.run sys pairs cg_rca Variant.Rca);
  let flops_rca = (Swarch.Core_group.total_cost cg_rca).Swarch.Cost.scalar_flops in
  let cg_cache = Swarch.Core_group.create cfg in
  ignore (Kernel.run sys pairs cg_cache Variant.Cache);
  let flops_cache = (Swarch.Core_group.total_cost cg_cache).Swarch.Cost.scalar_flops in
  let ratio = flops_rca /. flops_cache in
  Alcotest.(check bool)
    (Printf.sprintf "RCA ~2x flops (got %.2fx)" ratio)
    true
    (ratio > 1.7 && ratio < 2.2)

let test_ustc_loads_mpe () =
  let _, sys, pairs = setup ~molecules:80 ~seed:29 () in
  let cg = Swarch.Core_group.create cfg in
  ignore (Kernel.run sys pairs cg Variant.Ustc);
  Alcotest.(check bool) "MPE does the updates" true
    (Swarch.Mpe.time cfg cg.Swarch.Core_group.mpe > 0.0)

let test_vec_uses_simd () =
  let _, sys, pairs = setup ~molecules:80 ~seed:31 () in
  let cg = Swarch.Core_group.create cfg in
  ignore (Kernel.run sys pairs cg Variant.Vec);
  let c = Swarch.Core_group.total_cost cg in
  Alcotest.(check bool) "simd ops charged" true (c.Swarch.Cost.simd_ops > 1000.0);
  let cg2 = Swarch.Core_group.create cfg in
  ignore (Kernel.run sys pairs cg2 Variant.Cache);
  let c2 = Swarch.Core_group.total_cost cg2 in
  Alcotest.(check bool) "scalar kernel has no simd" true (c2.Swarch.Cost.simd_ops = 0.0);
  Alcotest.(check bool) "vec needs fewer scalar flops" true
    (c.Swarch.Cost.scalar_flops < c2.Swarch.Cost.scalar_flops)

let test_kernels_fit_in_ldm () =
  (* a big system must still fit the kernel working set in 64 KB *)
  let _, sys, pairs = setup ~molecules:600 ~seed:37 () in
  let cg = Swarch.Core_group.create cfg in
  (* raises Out_of_ldm on overflow *)
  ignore (Kernel.run sys pairs cg Variant.Mark);
  Array.iter
    (fun cpe ->
      Alcotest.(check bool) "high water below 64 KB" true
        (Swarch.Ldm.high_water cpe.Swarch.Cpe.ldm <= 65536))
    cg.Swarch.Core_group.cpes

let prop_all_variants_agree =
  QCheck.Test.make ~name:"kernels: all variants agree on random systems" ~count:8
    QCheck.(pair (int_range 10 40) (int_range 0 1000))
    (fun (molecules, seed) ->
      let st, sys, pairs = setup ~molecules ~seed () in
      let ref_f, _, _ = reference st sys pairs in
      let scale = Float.max 1.0 (max_abs ref_f) in
      List.for_all
        (fun v ->
          let outcome = run_variant sys pairs v in
          let f = kernel_forces st sys outcome in
          (* tolerance class: ulp-budget at mixed-precision scale *)
          Result.is_ok
            (Swverify.Buf.compare_arrays
               (Swverify.Tol.rel_abs ~rel:0.0 ~abs:(5e-4 *. scale))
               ref_f f))
        Variant.all)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_all_variants_agree ]

let variant_cases =
  List.map
    (fun v ->
      Alcotest.test_case (Variant.name v ^ " matches reference") `Quick
        (test_variant_matches_reference v))
    Variant.all

let ewald_cases =
  List.map
    (fun v ->
      Alcotest.test_case (Variant.name v ^ " matches reference (Ewald)") `Quick
        (test_variant_matches_reference_ewald v))
    [ Variant.Ori; Variant.Cache; Variant.Mark ]

let suites =
  [
    ( "swgmx.package",
      [
        Alcotest.test_case "AoS and SoA agree" `Quick test_package_layouts_agree;
        Alcotest.test_case "padding is zero" `Quick test_package_padding_zero;
        Alcotest.test_case "package size" `Quick test_package_bytes;
        Alcotest.test_case "exclusion masks complete" `Quick test_excl_mask_symmetry;
      ] );
    ("swgmx.correctness", variant_cases @ ewald_cases);
    ( "swgmx.cost_model",
      [
        Alcotest.test_case "Fig 8 ordering" `Slow test_fig8_ordering;
        Alcotest.test_case "read cache miss < 15%" `Slow test_read_cache_miss_ratio_low;
        Alcotest.test_case "marks reduce DMA traffic" `Quick test_mark_reduces_dma;
        Alcotest.test_case "meaningless copies exist" `Quick test_mark_stats_show_meaningless_copies;
        Alcotest.test_case "RCA doubles flops" `Quick test_rca_doubles_computation;
        Alcotest.test_case "USTC loads the MPE" `Quick test_ustc_loads_mpe;
        Alcotest.test_case "Vec charges SIMD ops" `Quick test_vec_uses_simd;
        Alcotest.test_case "kernels fit in LDM" `Slow test_kernels_fit_in_ldm;
      ] );
    ("swgmx.properties", qsuite);
  ]
