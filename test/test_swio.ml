(* Tests for the I/O substrate. *)

open Swio

(* ------------------------------------------------------------------ *)
(* Fast_format *)

let test_format_integers () =
  Alcotest.(check string) "zero" "0" (Fast_format.float_to_string 0.0 ~decimals:0);
  Alcotest.(check string) "positive" "42" (Fast_format.float_to_string 42.0 ~decimals:0);
  Alcotest.(check string) "negative" "-7" (Fast_format.float_to_string (-7.0) ~decimals:0)

let test_format_decimals () =
  Alcotest.(check string) "3 decimals" "1.500" (Fast_format.float_to_string 1.5 ~decimals:3);
  Alcotest.(check string) "padding" "0.001" (Fast_format.float_to_string 0.001 ~decimals:3);
  Alcotest.(check string) "negative frac" "-0.250" (Fast_format.float_to_string (-0.25) ~decimals:3);
  Alcotest.(check string) "rounding" "0.667" (Fast_format.float_to_string (2.0 /. 3.0) ~decimals:3)

let test_format_rejects_nan () =
  Alcotest.(check bool) "nan rejected" true
    (try ignore (Fast_format.float_to_string Float.nan ~decimals:3); false
     with Invalid_argument _ -> true)

let test_format_rejects_too_many_decimals () =
  Alcotest.(check bool) "decimals cap" true
    (try ignore (Fast_format.float_to_string 1.0 ~decimals:15); false
     with Invalid_argument _ -> true)

let prop_format_matches_printf =
  (* the specialized formatter must agree with printf %.*f *)
  QCheck.Test.make ~name:"fast_format: agrees with printf" ~count:500
    QCheck.(pair (float_range (-99999.0) 99999.0) (int_range 0 6))
    (fun (x, d) ->
      let fast = Fast_format.float_to_string x ~decimals:d in
      let slow = Printf.sprintf "%.*f" d x in
      (* printf uses round-half-even, ours rounds half away: accept
         either by comparing as numbers *)
      Float.abs (float_of_string fast -. float_of_string slow)
      <= 0.51 /. (10.0 ** float_of_int d))

let prop_format_roundtrip =
  QCheck.Test.make ~name:"fast_format: parse-back within half ulp" ~count:500
    QCheck.(float_range (-1e6) 1e6)
    (fun x ->
      let s = Fast_format.float_to_string x ~decimals:4 in
      Float.abs (float_of_string s -. x) <= 0.5 /. 1e4 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Buffered_writer *)

let test_writer_accumulates () =
  let sink = Buffer.create 64 in
  let w = Buffered_writer.create ~capacity:16 (Buffered_writer.To_buffer sink) in
  Buffered_writer.write_string w "hello ";
  Buffered_writer.write_string w "world";
  Buffered_writer.flush w;
  Alcotest.(check string) "content" "hello world" (Buffer.contents sink)

let test_writer_few_flushes () =
  (* a large buffer means few "write calls" for many small writes *)
  let w = Buffered_writer.create ~capacity:65536 Buffered_writer.Discard in
  for _ = 1 to 10000 do
    Buffered_writer.write_string w "0.123 "
  done;
  Buffered_writer.flush w;
  Alcotest.(check bool) "about one flush" true (Buffered_writer.flushes w <= 2);
  Alcotest.(check int) "payload counted" 60000 (Buffered_writer.bytes_written w)

let test_writer_small_buffer_many_flushes () =
  let w = Buffered_writer.create ~capacity:64 Buffered_writer.Discard in
  for _ = 1 to 1000 do
    Buffered_writer.write_string w "0.123 "
  done;
  Buffered_writer.flush w;
  Alcotest.(check bool) "many flushes" true (Buffered_writer.flushes w > 50)

let test_writer_write_fixed () =
  let sink = Buffer.create 64 in
  let w = Buffered_writer.create ~capacity:256 (Buffered_writer.To_buffer sink) in
  Buffered_writer.write_fixed w 3.14159 ~decimals:2;
  Buffered_writer.flush w;
  Alcotest.(check string) "fixed" "3.14" (Buffer.contents sink)

(* ------------------------------------------------------------------ *)
(* Trajectory *)

let test_trajectory_paths_agree () =
  (* both output paths must produce numerically identical frames *)
  let n = 50 in
  let rng = Mdcore.Rng.create 5 in
  let pos = Fvec.of_array (Array.init (3 * n) (fun _ -> Mdcore.Rng.uniform rng (-5.0) 5.0)) in
  let render path =
    let sink = Buffer.create 4096 in
    let w = Buffered_writer.create ~capacity:65536 (Buffered_writer.To_buffer sink) in
    ignore (Trajectory.write_frame ~path w ~step:7 ~pos ~n);
    Buffered_writer.flush w;
    Buffer.contents sink
  in
  let std = render Trajectory.Standard and fast = render Trajectory.Fast in
  (* parse all numbers from both and compare *)
  let numbers s =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter_map (fun tok -> float_of_string_opt (String.trim tok))
  in
  let a = numbers std and b = numbers fast in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      Alcotest.(check bool) "same value" true (Float.abs (x -. y) <= 0.0011))
    a b

let test_io_model_fast_wins () =
  let slow = Io_model.frame_time ~path:Io_model.Standard ~n_atoms:100000 in
  let fast = Io_model.frame_time ~path:Io_model.Fast ~n_atoms:100000 in
  Alcotest.(check bool)
    (Printf.sprintf "fast path >5x faster (%.1fx)" (slow /. fast))
    true
    (slow /. fast > 5.0)

(* ------------------------------------------------------------------ *)
(* Checkpoint: hostile input.  The parser must reject every corruption
   with Invalid_argument — never crash, loop, or silently truncate. *)

let sample_checkpoint () =
  let n = 4 in
  let pos = Fvec.of_array (Array.init (3 * n) (fun i -> 0.1 *. float_of_int (i + 1))) in
  let vel = Fvec.of_array (Array.init (3 * n) (fun i -> -0.01 *. float_of_int (i + 1))) in
  Checkpoint.capture ~step:10 ~pos ~vel ~n_atoms:n ()

let rejects name f =
  match f () with
  | _ -> Alcotest.failf "%s: hostile input accepted" name
  | exception Invalid_argument _ -> ()

let test_checkpoint_truncation_fuzz () =
  let ck = sample_checkpoint () in
  let good = Checkpoint.to_string ck in
  let full = Checkpoint.of_string good in
  Alcotest.(check bool) "round-trip exact" true (full = ck);
  (* a prefix cut at any byte must be rejected, with one inherent
     exception: a cut inside the very last float line still parses
     (a shortened hex literal is itself valid and the value count
     still matches) — there the damage is confined to that one value *)
  let last_line_start = String.rindex_from good (String.length good - 2) '\n' in
  for k = 0 to String.length good - 1 do
    match Checkpoint.of_string (String.sub good 0 k) with
    | parsed ->
        if k <= last_line_start then
          Alcotest.failf "truncation at byte %d accepted" k;
        Alcotest.(check int) "step survives" ck.Checkpoint.step
          parsed.Checkpoint.step;
        Alcotest.(check bool) "positions survive" true
          (parsed.Checkpoint.pos = ck.Checkpoint.pos);
        Array.iteri
          (fun i v ->
            if i < Array.length parsed.Checkpoint.vel - 1
               && v <> ck.Checkpoint.vel.(i)
            then Alcotest.failf "cut at %d corrupted velocity %d" k i)
          parsed.Checkpoint.vel
    | exception Invalid_argument _ -> ()
  done

let test_checkpoint_hostile_headers () =
  let body = String.concat "" (List.init 6 (fun _ -> "0x1p0\n")) in
  let with_header h = "swgmx-checkpoint 1\n" ^ h ^ "\n" ^ body in
  rejects "negative step" (fun () -> Checkpoint.of_string (with_header "-1 1"));
  rejects "negative atoms" (fun () -> Checkpoint.of_string (with_header "10 -1"));
  (* an overflowing count must fail the guard, not the allocator *)
  rejects "overflowing atoms" (fun () ->
      Checkpoint.of_string (with_header "10 4611686018427387903"));
  rejects "non-numeric header" (fun () ->
      Checkpoint.of_string (with_header "ten 1"));
  rejects "missing field" (fun () -> Checkpoint.of_string (with_header "10"));
  rejects "bad magic" (fun () ->
      Checkpoint.of_string ("swgmx-checkpoint 9\n10 1\n" ^ body));
  rejects "empty input" (fun () -> Checkpoint.of_string "")

let test_checkpoint_hostile_values () =
  let ck = sample_checkpoint () in
  let good = Checkpoint.to_string ck in
  let lines = String.split_on_char '\n' good in
  let patch i v =
    String.concat "\n" (List.mapi (fun j l -> if j = i then v else l) lines)
  in
  (* corrupt each float line in turn with every class of bad value *)
  List.iter
    (fun bad ->
      for i = 3 to 3 + (6 * 4) - 1 do
        rejects
          (Printf.sprintf "line %d <- %S" i bad)
          (fun () -> Checkpoint.of_string (patch i bad))
      done)
    [ "nan"; "inf"; "-inf"; "junk"; "" ];
  (* junk appended after the exact payload *)
  rejects "trailing junk" (fun () -> Checkpoint.of_string (good ^ "junk\n"));
  rejects "trailing float" (fun () -> Checkpoint.of_string (good ^ "0x1p0\n"))

(* denormals are legal floats no simulated trajectory produces: a
   checkpoint carrying one is damaged input, sanitized on parse by
   flushing to signed zero — so a hostile restart can never feed the
   engine the flushed range (NaN/inf are rejected outright above) *)
let test_checkpoint_denormal_sanitized () =
  let ck = sample_checkpoint () in
  let good = Checkpoint.to_string ck in
  let lines = String.split_on_char '\n' good in
  let patch i v =
    String.concat "\n" (List.mapi (fun j l -> if j = i then v else l) lines)
  in
  (* line 3 is pos.(0) in the v2 format (magic, platform, header) *)
  let first_pos s = (Checkpoint.of_string s).Checkpoint.pos.(0) in
  let check_bits msg expected got =
    Alcotest.(check int64) msg (Int64.bits_of_float expected)
      (Int64.bits_of_float got)
  in
  List.iter
    (fun d -> check_bits (d ^ " flushed to +0") 0.0 (first_pos (patch 3 d)))
    [ "0x1p-1060"; "0x0.fffffffffffffp-1022"; "0x0.0000000000001p-1022" ];
  List.iter
    (fun d -> check_bits (d ^ " flushed to -0") (-0.0) (first_pos (patch 3 d)))
    [ "-0x1p-1060"; "-0x0.0000000000001p-1022" ];
  (* the smallest *normal* float is genuine data and survives exactly *)
  check_bits "min_float passes through" 0x1p-1022 (first_pos (patch 3 "0x1p-1022"));
  check_bits "-min_float passes through" (-0x1p-1022)
    (first_pos (patch 3 "-0x1p-1022"));
  (* every untouched value still round-trips bit for bit *)
  let parsed = Checkpoint.of_string (patch 3 "0x1p-1060") in
  Array.iteri
    (fun i v ->
      if i > 0 then check_bits (Printf.sprintf "pos %d untouched" i)
          ck.Checkpoint.pos.(i) v)
    parsed.Checkpoint.pos;
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "vel %d untouched" i)
        ck.Checkpoint.vel.(i) v)
    parsed.Checkpoint.vel;
  (* a sanitized checkpoint restores into live buffers with no
     denormal (and nothing non-finite) left to propagate *)
  let n = ck.Checkpoint.n_atoms in
  let pos = Fvec.create (3 * n) and vel = Fvec.create (3 * n) in
  ignore (Checkpoint.restore parsed ~pos ~vel);
  for i = 0 to (3 * n) - 1 do
    let check_clean what (x : float) =
      if not (Float.is_finite x) then
        Alcotest.failf "%s %d non-finite after restore" what i;
      if x <> 0.0 && Float.abs x < Float.min_float then
        Alcotest.failf "%s %d still denormal after restore" what i
    in
    check_clean "pos" pos.{i};
    check_clean "vel" vel.{i}
  done

(* ------------------------------------------------------------------ *)
(* Xtc: hostile input *)

let xtc_stream () =
  let n = 3 in
  let pos = Fvec.of_array (Array.init (3 * n) (fun i -> 0.25 *. float_of_int i)) in
  let sink = Buffer.create 256 in
  let w = Buffered_writer.create (Buffered_writer.To_buffer sink) in
  Xtc.write w (Xtc.encode ~step:1 ~precision:1000.0 pos ~n);
  Xtc.write w (Xtc.encode ~step:2 ~precision:1000.0 pos ~n);
  Buffered_writer.flush w;
  Buffer.contents sink

let test_xtc_truncation_fuzz () =
  let data = xtc_stream () in
  let frames = Xtc.read_all data in
  Alcotest.(check int) "both frames parse" 2 (List.length frames);
  let frame_bytes = String.length data / 2 in
  (* cutting at any byte either rejects or yields exactly the frames
     that fit whole *)
  for k = 0 to String.length data - 1 do
    match Xtc.read_all (String.sub data 0 k) with
    | parsed ->
        if not ((k = 0 && parsed = []) || (k = frame_bytes && List.length parsed = 1))
        then Alcotest.failf "truncation at byte %d accepted %d frame(s)" k
            (List.length parsed)
    | exception Invalid_argument _ -> ()
  done

let put_i32 s off v =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff));
  Bytes.to_string b

let test_xtc_hostile_headers () =
  let data = xtc_stream () in
  (* negative payload length used to freeze the reader (offset never
     advanced); now every header corruption must be rejected *)
  rejects "negative plen" (fun () -> Xtc.read_all (put_i32 data 12 (-1)));
  rejects "negative atoms" (fun () -> Xtc.read_all (put_i32 data 4 (-3)));
  rejects "zero precision" (fun () -> Xtc.read_all (put_i32 data 8 0));
  rejects "negative precision" (fun () -> Xtc.read_all (put_i32 data 8 (-1000)));
  rejects "plen/atoms mismatch" (fun () -> Xtc.read_all (put_i32 data 12 24));
  rejects "huge plen" (fun () -> Xtc.read_all (put_i32 data 12 0x7fffffff))

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_format_matches_printf; prop_format_roundtrip ]

let suites =
  [
    ( "swio.fast_format",
      [
        Alcotest.test_case "integers" `Quick test_format_integers;
        Alcotest.test_case "decimals" `Quick test_format_decimals;
        Alcotest.test_case "rejects nan" `Quick test_format_rejects_nan;
        Alcotest.test_case "decimals cap" `Quick test_format_rejects_too_many_decimals;
      ] );
    ( "swio.buffered_writer",
      [
        Alcotest.test_case "accumulates" `Quick test_writer_accumulates;
        Alcotest.test_case "few flushes with big buffer" `Quick test_writer_few_flushes;
        Alcotest.test_case "many flushes with small buffer" `Quick test_writer_small_buffer_many_flushes;
        Alcotest.test_case "write_fixed" `Quick test_writer_write_fixed;
      ] );
    ( "swio.trajectory",
      [
        Alcotest.test_case "fast = standard output" `Quick test_trajectory_paths_agree;
        Alcotest.test_case "cost model favours fast path" `Quick test_io_model_fast_wins;
      ] );
    ( "swio.hostile_input",
      [
        Alcotest.test_case "checkpoint: truncation fuzz" `Quick
          test_checkpoint_truncation_fuzz;
        Alcotest.test_case "checkpoint: hostile headers" `Quick
          test_checkpoint_hostile_headers;
        Alcotest.test_case "checkpoint: hostile values" `Quick
          test_checkpoint_hostile_values;
        Alcotest.test_case "checkpoint: denormals sanitized" `Quick
          test_checkpoint_denormal_sanitized;
        Alcotest.test_case "xtc: truncation fuzz" `Quick
          test_xtc_truncation_fuzz;
        Alcotest.test_case "xtc: hostile headers" `Quick
          test_xtc_hostile_headers;
      ] );
    ("swio.properties", qsuite);
  ]
