(* swoffload: LDM tiling plans and the Barnes-Hut workload they carry.

   The plan layer is the single audited source of tile sizes, so its
   edge cases get direct coverage: a working set smaller than one tile
   must produce a single tight tile, uneven work lists must carry a
   remainder tile, and a working set that cannot fit one slot of one
   tile in the LDM budget must fail with a structured error — never a
   silent truncation.  The N-body half checks the physics the offload
   driver carries: Barnes-Hut against direct summation, energy
   conservation, octree invariants and domain-count invariance. *)

module Plan = Swoffload.Plan
module Octree = Swnbody.Octree
module Bh = Swnbody.Bh
module Sim = Swnbody.Sim
module Fbuf = Mdcore.Fbuf

let cfg = Swarch.Config.default
let budget = cfg.Swarch.Config.ldm_bytes

let buf ?(name = "bodies") item_bytes =
  { Plan.name; intent = Plan.Read; item_bytes }

let spec ?(kernel = "t") ?(resident = 0) ?(tile = Plan.Auto)
    ?(slots = Plan.default_slots) buffers =
  { Plan.kernel; buffers; resident_bytes = resident; tile; slots }

let derive ?(n_items = 100) s = Plan.derive s ~cfg ~n_items

(* every test leaves the process back on the serial path *)
let with_domains d f =
  Swpar.Domains.set d;
  Fun.protect ~finally:(fun () -> Swpar.Domains.set 1) f

let bits = Int64.bits_of_float

(* --- plan derivation edge cases ---------------------------------------- *)

let test_tight_tile () =
  (* working set smaller than one tile: Auto caps the tile at the work
     list, so the whole set rides in a single tight tile *)
  match derive ~n_items:5 (spec [ buf 32 ]) with
  | Error e -> Alcotest.failf "unexpected error: %s" (Plan.error_to_string e)
  | Ok p ->
      Alcotest.(check int) "tile = work list" 5 p.Plan.tile_items;
      Alcotest.(check int) "one tile" 1 p.Plan.n_tiles;
      Alcotest.(check int) "no remainder" 0 p.Plan.remainder;
      let t = Plan.tile p 0 in
      Alcotest.(check int) "tile start" 0 t.Plan.start;
      Alcotest.(check int) "tile items" 5 t.Plan.items

let test_remainder_tile () =
  match derive ~n_items:23 (spec ~tile:(Plan.Items 7) [ buf 8 ]) with
  | Error e -> Alcotest.failf "unexpected error: %s" (Plan.error_to_string e)
  | Ok p ->
      Alcotest.(check int) "tiles" 4 p.Plan.n_tiles;
      Alcotest.(check int) "remainder" 2 p.Plan.remainder;
      let last = Plan.tile p 3 in
      Alcotest.(check int) "last start" 21 last.Plan.start;
      Alcotest.(check int) "last items" 2 last.Plan.items;
      (* the tiles cover [0, n) exactly, in order *)
      let covered = ref 0 in
      for i = 0 to p.Plan.n_tiles - 1 do
        let t = Plan.tile p i in
        Alcotest.(check int) "contiguous" !covered t.Plan.start;
        covered := !covered + t.Plan.items
      done;
      Alcotest.(check int) "full cover" 23 !covered

let test_items_overflow () =
  (* a fixed tile that cannot fit [slots] copies in the budget is a
     structured overflow carrying the audited numbers *)
  let k = (budget / (2 * 32)) + 1 in
  match derive (spec ~tile:(Plan.Items k) ~slots:2 [ buf 32 ]) with
  | Ok _ -> Alcotest.fail "oversized fixed tile must not derive"
  | Error (Plan.Ldm_overflow o) ->
      Alcotest.(check string) "kernel" "t" o.kernel;
      Alcotest.(check int) "needed" (2 * k * 32) o.needed;
      Alcotest.(check int) "budget" budget o.budget;
      Alcotest.(check int) "tile attempted" k o.tile_items
  | Error e -> Alcotest.failf "wrong error: %s" (Plan.error_to_string e)

let test_auto_overflow () =
  (* Auto with a resident block that eats the whole budget cannot fit
     even a one-item tile *)
  match derive (spec ~resident:budget [ buf 8 ]) with
  | Ok _ -> Alcotest.fail "no room for one item: must not derive"
  | Error (Plan.Ldm_overflow o) ->
      Alcotest.(check int) "smallest tile attempted" 1 o.tile_items;
      Alcotest.(check int) "needed" ((2 * 8) + budget) o.needed
  | Error e -> Alcotest.failf "wrong error: %s" (Plan.error_to_string e)

let test_bad_specs () =
  let is_bad name = function
    | Error (Plan.Bad_spec _) -> ()
    | Ok _ -> Alcotest.failf "%s: derived" name
    | Error e -> Alcotest.failf "%s: wrong error %s" name (Plan.error_to_string e)
  in
  is_bad "slots" (derive (spec ~slots:0 [ buf 8 ]));
  is_bad "negative items" (derive ~n_items:(-1) (spec [ buf 8 ]));
  is_bad "no buffers" (derive (spec []));
  is_bad "zero-byte buffer" (derive (spec [ buf 0 ]));
  is_bad "zero tile" (derive (spec ~tile:(Plan.Items 0) [ buf 8 ]));
  is_bad "negative resident" (derive (spec ~resident:(-4) [ buf 8 ]))

let test_derive_exn () =
  Alcotest.check_raises "derive_exn raises the structured error"
    (Plan.Plan_error
       (Plan.Bad_spec { kernel = "t"; reason = "no streamed buffers declared" }))
    (fun () -> ignore (Plan.derive_exn (spec []) ~cfg ~n_items:4))

let test_reserve () =
  match derive ~n_items:10_000 (spec ~resident:256 [ buf 16; buf 8 ]) with
  | Error e -> Alcotest.failf "unexpected error: %s" (Plan.error_to_string e)
  | Ok p ->
      Alcotest.(check int) "item bytes summed" 24 p.Plan.item_bytes;
      Alcotest.(check int) "recorded = slots x tile + resident"
        ((2 * p.Plan.tile_bytes) + 256)
        (Plan.reserve p ~recorded:true);
      Alcotest.(check int) "serial = one tile + resident"
        (p.Plan.tile_bytes + 256)
        (Plan.reserve p ~recorded:false);
      Alcotest.(check bool) "recorded reserve fits the budget" true
        (Plan.reserve p ~recorded:true <= budget)

let test_tile_bounds () =
  match derive ~n_items:10 (spec [ buf 8 ]) with
  | Error e -> Alcotest.failf "unexpected error: %s" (Plan.error_to_string e)
  | Ok p ->
      let oob i = try ignore (Plan.tile p i); false with Invalid_argument _ -> true in
      Alcotest.(check bool) "negative index" true (oob (-1));
      Alcotest.(check bool) "past the end" true (oob p.Plan.n_tiles)

let qtiles_cover =
  QCheck.Test.make ~name:"plan: tiles cover the work list, within budget"
    ~count:300
    QCheck.(
      quad (int_range 1 128) (int_range 1 4) (int_range 0 1000)
        (int_range 0 4096))
    (fun (item_bytes, slots, n_items, resident) ->
      match
        Plan.derive
          (spec ~resident ~slots [ buf item_bytes ])
          ~cfg ~n_items
      with
      | Error (Plan.Ldm_overflow _) -> true (* structured refusal is fine *)
      | Error (Plan.Bad_spec _) -> false
      | Ok p ->
          let covered = ref 0 and ok = ref true in
          for i = 0 to p.Plan.n_tiles - 1 do
            let t = Plan.tile p i in
            if t.Plan.start <> !covered || t.Plan.items < 1 then ok := false;
            covered := !covered + t.Plan.items
          done;
          !ok
          && (!covered = n_items || (n_items = 0 && p.Plan.n_tiles = 0))
          && Plan.reserve p ~recorded:true <= budget)

let qpartition_cover =
  QCheck.Test.make ~name:"plan: CPE partition covers the tiles in order"
    ~count:300
    QCheck.(pair (int_range 1 64) (int_range 0 2000))
    (fun (n_cpes, n_items) ->
      match Plan.derive (spec [ buf 8 ]) ~cfg ~n_items with
      | Error _ -> false
      | Ok p ->
          let covered = ref 0 and ok = ref true in
          for id = 0 to n_cpes - 1 do
            let lo, hi = Plan.partition p n_cpes id in
            if lo <> min !covered p.Plan.n_tiles || hi < lo then ok := false;
            covered := max !covered hi
          done;
          !ok && !covered = p.Plan.n_tiles)

(* --- the Barnes-Hut workload ------------------------------------------- *)

let test_bh_vs_direct () =
  let n = 128 in
  let t = Sim.make ~n ~seed:7 () in
  let cg = Swarch.Core_group.create cfg in
  let tree =
    Octree.build ~n ~pos:t.Sim.pos ~mass:t.Sim.mass
      ~mpe:cg.Swarch.Core_group.mpe ()
  in
  let plan = Bh.plan cfg ~n in
  let stats =
    Bh.forces ~cg ~plan ~tree ~theta:0.3 ~eps:t.Sim.eps ~pos:t.Sim.pos
      ~mass:t.Sim.mass ~acc:t.Sim.acc ()
  in
  let dacc = Fbuf.create (3 * n) in
  let dpot =
    Bh.direct ~eps:t.Sim.eps ~pos:t.Sim.pos ~mass:t.Sim.mass ~acc:dacc n
  in
  let amax = ref 0.0 in
  for i = 0 to (3 * n) - 1 do
    amax := Float.max !amax (Float.abs (Fbuf.get dacc i))
  done;
  for i = 0 to (3 * n) - 1 do
    let d = Float.abs (Fbuf.get t.Sim.acc i -. Fbuf.get dacc i) in
    if d > 0.05 *. !amax then
      Alcotest.failf "acc[%d]: bh %g vs direct %g (tol %g)" i
        (Fbuf.get t.Sim.acc i) (Fbuf.get dacc i)
        (0.05 *. !amax)
  done;
  let perr = Float.abs (stats.Bh.pot -. dpot) /. Float.abs dpot in
  Alcotest.(check bool) "potential within 5%" true (perr < 0.05)

let test_energy_drift () =
  let r = Sim.simulate ~cfg ~steps:10 ~n:128 () in
  Alcotest.(check bool) "bounded drift" true (r.Sim.max_drift < 5e-3);
  Alcotest.(check bool) "tiles derived" true (r.Sim.n_tiles >= 1);
  Alcotest.(check bool) "reserve fits" true (r.Sim.ldm_reserve <= budget)

let test_octree_invariants () =
  let n = 200 in
  let t = Sim.make ~n ~seed:42 () in
  let cg = Swarch.Core_group.create cfg in
  let tree =
    Octree.build ~n ~pos:t.Sim.pos ~mass:t.Sim.mass
      ~mpe:cg.Swarch.Core_group.mpe ()
  in
  (* the root carries the total mass *)
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. Fbuf.get t.Sim.mass i
  done;
  Alcotest.(check bool) "root mass" true
    (Float.abs (tree.Octree.mass.(0) -. !total) < 1e-12);
  (* [order] is a permutation of the bodies *)
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      Alcotest.(check bool) "order in range" true (i >= 0 && i < n);
      Alcotest.(check bool) "order unique" false seen.(i);
      seen.(i) <- true)
    tree.Octree.order;
  (* the leaves partition the body slots exactly *)
  let slot = Array.make n 0 in
  let leaves = ref 0 in
  for v = 0 to tree.Octree.n_nodes - 1 do
    if Octree.is_leaf tree v then begin
      incr leaves;
      for s = tree.Octree.first.(v) to tree.Octree.first.(v) + tree.Octree.count.(v) - 1
      do
        slot.(s) <- slot.(s) + 1
      done
    end
  done;
  Array.iteri
    (fun s c -> Alcotest.(check int) (Printf.sprintf "slot %d" s) 1 c)
    slot;
  Alcotest.(check bool) "has leaves" true (!leaves > 0)

let test_domain_invariance () =
  let run d = with_domains d (fun () -> Sim.simulate ~cfg ~steps:4 ~n:96 ()) in
  let a = run 1 and b = run 4 in
  Alcotest.(check int64) "e0" (bits a.Sim.e0) (bits b.Sim.e0);
  Alcotest.(check int64) "e_final" (bits a.Sim.e_final) (bits b.Sim.e_final);
  Alcotest.(check int64) "elapsed" (bits a.Sim.elapsed_s) (bits b.Sim.elapsed_s);
  Alcotest.(check int64) "dma bytes" (bits a.Sim.dma_bytes) (bits b.Sim.dma_bytes);
  Alcotest.(check int) "node visits" a.Sim.node_visits b.Sim.node_visits

let test_platform_invariance () =
  (* the LDM budget moves the tiling, never the physics *)
  let run cfg = Sim.simulate ~cfg ~steps:4 ~n:96 () in
  let a = run Swarch.Platform.sw26010 and b = run Swarch.Platform.sw26010_pro in
  Alcotest.(check int64) "e_final" (bits a.Sim.e_final) (bits b.Sim.e_final);
  Alcotest.(check int) "node visits" a.Sim.node_visits b.Sim.node_visits;
  Alcotest.(check bool) "tiling differs with the budget" true
    (a.Sim.tile_items <> b.Sim.tile_items || a.Sim.n_tiles <> b.Sim.n_tiles
   || a.Sim.tile_items = a.Sim.n)

let qc t = QCheck_alcotest.to_alcotest t

let suites =
  [
    ( "swoffload plan",
      [
        Alcotest.test_case "auto: single tight tile" `Quick test_tight_tile;
        Alcotest.test_case "remainder tile" `Quick test_remainder_tile;
        Alcotest.test_case "fixed tile overflow is structured" `Quick
          test_items_overflow;
        Alcotest.test_case "auto overflow is structured" `Quick
          test_auto_overflow;
        Alcotest.test_case "bad specs rejected" `Quick test_bad_specs;
        Alcotest.test_case "derive_exn raises Plan_error" `Quick test_derive_exn;
        Alcotest.test_case "reserve arithmetic" `Quick test_reserve;
        Alcotest.test_case "tile index bounds" `Quick test_tile_bounds;
        qc qtiles_cover;
        qc qpartition_cover;
      ] );
    ( "swnbody",
      [
        Alcotest.test_case "barnes-hut matches direct summation" `Quick
          test_bh_vs_direct;
        Alcotest.test_case "leapfrog conserves energy" `Quick test_energy_drift;
        Alcotest.test_case "octree invariants" `Quick test_octree_invariants;
        Alcotest.test_case "domain-count invariance" `Quick
          test_domain_invariance;
        Alcotest.test_case "platform moves tiling, not physics" `Quick
          test_platform_invariance;
      ] );
  ]
