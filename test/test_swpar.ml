(* swpar: the deterministic domain pool.

   Two layers of tests.  The mechanism layer checks the static sharding
   arithmetic and the pool's ordering/exception contracts.  The
   determinism layer is the subsystem's reason to exist: physics, cost
   charges, checkpoint bytes, exported traces and store contents must
   be bit-identical at every domain count (7 exercises uneven stripe
   remainders against the 64-CPE mesh and a 4-job batch). *)

module K = Swgmx.Kernel_common
module V = Swgmx.Variant
module E = Swgmx.Engine

let domain_counts = [ 1; 2; 4; 7 ]

(* every test leaves the process back on the serial path *)
let with_domains d f =
  Swpar.Domains.set d;
  Fun.protect ~finally:(fun () -> Swpar.Domains.set 1) f

let bits = Int64.bits_of_float

(* --- static sharding --------------------------------------------------- *)

let qstripes_cover =
  QCheck.Test.make ~name:"stripes: cover [0,n) exactly, in order" ~count:500
    QCheck.(pair (int_range 1 32) (int_range 0 500))
    (fun (shards, n) ->
      let st = Swpar.Pool.stripes ~shards ~n in
      Array.length st = shards
      && fst st.(0) = 0
      && snd st.(shards - 1) = n
      && Array.for_all (fun (lo, hi) -> lo <= hi) st
      && (let ok = ref true in
          for s = 1 to shards - 1 do
            if fst st.(s) <> snd st.(s - 1) then ok := false
          done;
          !ok))

let qstripes_balanced =
  QCheck.Test.make ~name:"stripes: balanced to within one element" ~count:500
    QCheck.(pair (int_range 1 32) (int_range 0 500))
    (fun (shards, n) ->
      let st = Swpar.Pool.stripes ~shards ~n in
      let sizes = Array.map (fun (lo, hi) -> hi - lo) st in
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      mx - mn <= 1)

(* --- pool contracts ---------------------------------------------------- *)

let test_map_stripes_order () =
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let out =
            Swpar.Pool.map_stripes ~n:100 (fun ~shard ~lo ~hi -> (shard, lo, hi))
          in
          Array.iteri
            (fun i (s, _, _) ->
              Alcotest.(check int) "shard order" i s)
            out;
          let total =
            Array.fold_left (fun acc (_, lo, hi) -> acc + (hi - lo)) 0 out
          in
          Alcotest.(check int) "full range" 100 total))
    domain_counts

let test_map_array_order () =
  List.iter
    (fun d ->
      with_domains d (fun () ->
          let xs = Array.init 37 (fun i -> i) in
          let out = Swpar.Pool.map_array (fun x -> x * x) xs in
          Array.iteri
            (fun i y -> Alcotest.(check int) "element order" (i * i) y)
            out))
    domain_counts

exception Boom of int

let test_lowest_shard_exception_wins () =
  List.iter
    (fun d ->
      with_domains d (fun () ->
          match
            Swpar.Pool.iter_stripes ~n:64 (fun ~shard ~lo:_ ~hi:_ ->
                raise (Boom shard))
          with
          | () -> Alcotest.fail "no exception propagated"
          | exception Boom s -> Alcotest.(check int) "lowest shard wins" 0 s))
    domain_counts

let test_nested_sections_run_inline () =
  with_domains 4 (fun () ->
      let inner_shards =
        Swpar.Pool.map_stripes ~n:16 (fun ~shard:_ ~lo:_ ~hi:_ ->
            Array.length
              (Swpar.Pool.map_stripes ~n:16 (fun ~shard ~lo:_ ~hi:_ -> shard)))
      in
      Array.iter
        (fun n -> Alcotest.(check int) "nested section is inline" 1 n)
        inner_shards)

(* --- determinism: the force kernel ------------------------------------- *)

(* one small water system, shared by the kernel runs below *)
let prep = lazy (Swbench.Common.prepare ~particles:600 ())

let kernel_run () =
  let p = Lazy.force prep in
  let cg = Swarch.Core_group.create (Swbench.Common.cfg ()) in
  let res, _stats =
    Swgmx.Kernel_cpe.run p.Swbench.Common.sys p.Swbench.Common.pairs cg
      (Swgmx.Kernel_cpe.spec_of_variant V.Mark)
  in
  (res, Swarch.Core_group.total_cost cg, Swarch.Core_group.elapsed cg)

let test_kernel_bit_identity () =
  let ref_res, ref_cost, ref_elapsed = with_domains 1 kernel_run in
  List.iter
    (fun d ->
      let res, cost, elapsed = with_domains d kernel_run in
      let ctx = Printf.sprintf "domains=%d" d in
      Alcotest.(check int64)
        (ctx ^ ": e_lj bits") (bits (K.e_lj ref_res)) (bits (K.e_lj res));
      Alcotest.(check int64)
        (ctx ^ ": e_coul bits") (bits (K.e_coul ref_res)) (bits (K.e_coul res));
      Alcotest.(check int)
        (ctx ^ ": pairs") ref_res.K.pairs_in_cutoff res.K.pairs_in_cutoff;
      Alcotest.(check int)
        (ctx ^ ": force length")
        (Array.length ref_res.K.force)
        (Array.length res.K.force);
      Array.iteri
        (fun i f ->
          if bits f <> bits res.K.force.(i) then
            Alcotest.failf "%s: force.(%d) differs: %h vs %h" ctx i f
              res.K.force.(i))
        ref_res.K.force;
      (* the aggregate cost record is all floats and counters; the
         structural compare is exact *)
      Alcotest.(check bool) (ctx ^ ": cost totals") true (ref_cost = cost);
      Alcotest.(check int64)
        (ctx ^ ": elapsed bits") (bits ref_elapsed) (bits elapsed))
    domain_counts

(* --- determinism: a traced, priced step -------------------------------- *)

let traced_step () =
  Swtrace.Trace.enable ();
  Fun.protect ~finally:(fun () -> Swtrace.Trace.disable ())
    (fun () ->
      let m =
        E.measure
          ~cfg:(Swbench.Common.cfg ())
          ~plan:Swstep.Plan.Overlap ~version:E.V_other ~total_atoms:1500
          ~n_cg:1 ()
      in
      let json = Swtrace.Chrome.to_string (Swtrace.Trace.events ()) in
      (m.E.step_time, json))

let test_traced_step_bit_identity () =
  let ref_time, ref_json = with_domains 1 traced_step in
  List.iter
    (fun d ->
      let time, json = with_domains d traced_step in
      Alcotest.(check int64)
        (Printf.sprintf "domains=%d: step time bits" d)
        (bits ref_time) (bits time);
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d: trace JSON identical (%d bytes)" d
           (String.length ref_json))
        true
        (String.equal ref_json json))
    domain_counts

(* --- determinism: checkpoint bytes ------------------------------------- *)

let checkpoint_bytes () =
  let captured = ref [] in
  let _samples, _st, _stats =
    E.simulate_full ~molecules:20 ~seed:7 ~steps:20 ~sample_every:20
      ~checkpoint_every:10
      ~on_checkpoint:(fun ck ->
        captured := Swio.Checkpoint.to_string ck :: !captured)
      ()
  in
  List.rev !captured

let test_checkpoint_bit_identity () =
  let reference = with_domains 1 checkpoint_bytes in
  Alcotest.(check bool) "captures happened" true (reference <> []);
  List.iter
    (fun d ->
      let got = with_domains d checkpoint_bytes in
      Alcotest.(check (list string))
        (Printf.sprintf "domains=%d: checkpoint bytes" d)
        reference got)
    domain_counts

(* --- determinism: a 4-job batch over one store ------------------------- *)

let batch_manifest =
  "kind=measure name=a version=Cal atoms=600 n_cg=2\n\
   kind=measure name=b version=Ori atoms=600 n_cg=2\n\
   kind=measure name=a-again version=Cal atoms=600 n_cg=2\n\
   kind=measure name=c version=Other atoms=600 n_cg=2\n"

let batch_run () =
  let store = Swstore.Store.open_memory () in
  let cache = Swstore.Cache.create store in
  let kv = Swstore.Kv.create ~ns:"batch" cache in
  let jobs = Swbench.Batch.parse_manifest batch_manifest in
  Swbench.Common.set_measure_store (Some kv);
  let outcomes, _wall =
    Fun.protect
      ~finally:(fun () -> Swbench.Common.set_measure_store None)
      (fun () -> Swbench.Batch.run ~kv jobs)
  in
  let rows =
    List.map
      (fun o ->
        Printf.sprintf "%s|%s|%h" o.Swbench.Batch.job.Swbench.Batch.name
          (Swbench.Common.source_name o.Swbench.Batch.served)
          o.Swbench.Batch.headline)
      outcomes
  in
  (rows, Swstore.Store.chunk_keys store)

let test_batch_bit_identity () =
  let ref_rows, ref_chunks = with_domains 1 batch_run in
  Alcotest.(check int) "4 jobs ran" 4 (List.length ref_rows);
  (* the repeated key must be served from the store at every count *)
  Alcotest.(check bool) "repeat served from store" true
    (List.exists
       (fun r -> String.length r > 8 && String.sub r 0 8 = "a-again|")
       ref_rows
    && List.exists
         (fun r ->
           match String.index_opt r '|' with
           | Some i ->
               String.sub r 0 i = "a-again"
               && String.length r > i + 6
               && String.sub r (i + 1) 5 = "store"
           | None -> false)
         ref_rows);
  List.iter
    (fun d ->
      let rows, chunks = with_domains d batch_run in
      Alcotest.(check (list string))
        (Printf.sprintf "domains=%d: outcomes" d)
        ref_rows rows;
      (* store keys carry the execution configuration, so named objects
         differ across counts — but the content-addressed chunk payloads
         (the measurements themselves) must be the same set *)
      Alcotest.(check (list string))
        (Printf.sprintf "domains=%d: store chunk payloads" d)
        ref_chunks chunks)
    domain_counts

let qsuite = List.map QCheck_alcotest.to_alcotest [ qstripes_cover; qstripes_balanced ]

let suites =
  [
    ("swpar.stripes", qsuite);
    ( "swpar.pool",
      [
        Alcotest.test_case "map_stripes shard order" `Quick
          test_map_stripes_order;
        Alcotest.test_case "map_array element order" `Quick
          test_map_array_order;
        Alcotest.test_case "lowest shard's exception wins" `Quick
          test_lowest_shard_exception_wins;
        Alcotest.test_case "nested sections run inline" `Quick
          test_nested_sections_run_inline;
      ] );
    ( "swpar.determinism",
      [
        Alcotest.test_case "kernel bit-identity at 1/2/4/7 domains" `Quick
          test_kernel_bit_identity;
        Alcotest.test_case "traced step bit-identity at 1/2/4/7 domains" `Quick
          test_traced_step_bit_identity;
        Alcotest.test_case "checkpoint bytes bit-identity" `Quick
          test_checkpoint_bit_identity;
        Alcotest.test_case "4-job batch bit-identity over one store" `Quick
          test_batch_bit_identity;
      ] );
  ]
