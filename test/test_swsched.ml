(* Tests for swsched, the discrete-event pipeline scheduler.

   The synthetic tests build recordings by hand, where exact elapsed
   times are predictable; the kernel tests run the real Mark kernel
   recorded and replayed, checking the three properties the subsystem
   promises: determinism, physics conservation, and scheduled time
   bracketed by the analytic serial / ideal-overlap bounds. *)

module S = Swsched
module K = Swgmx.Kernel_common

let cfg = Swarch.Config.default

let check_close name expected got =
  let tol = 1e-15 +. (1e-9 *. Float.abs expected) in
  if Float.abs (expected -. got) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

(* ------------------------------------------------------------------ *)
(* Sim: event ordering *)

let test_sim_ordering () =
  let sim = S.Sim.create () in
  let log = ref [] in
  let ev tag () = log := tag :: !log in
  S.Sim.schedule sim ~at:3.0 (ev "c");
  S.Sim.schedule sim ~at:1.0 (ev "a1");
  S.Sim.schedule sim ~at:2.0 (ev "b");
  S.Sim.schedule sim ~at:1.0 (ev "a2");
  Alcotest.(check int) "pending before run" 4 (S.Sim.pending sim);
  S.Sim.run sim;
  Alcotest.(check (list string))
    "time order, FIFO within an instant"
    [ "a1"; "a2"; "b"; "c" ]
    (List.rev !log);
  check_close "clock at last event" 3.0 (S.Sim.now sim);
  Alcotest.(check int) "all processed" 4 (S.Sim.processed sim)

let test_sim_same_instant_appends () =
  (* an event scheduling at the current instant runs after the events
     already queued for that instant *)
  let sim = S.Sim.create () in
  let log = ref [] in
  let ev tag () = log := tag :: !log in
  S.Sim.schedule sim ~at:1.0 (fun () ->
      S.Sim.schedule sim ~at:1.0 (ev "tail"));
  S.Sim.schedule sim ~at:1.0 (ev "second");
  S.Sim.run sim;
  Alcotest.(check (list string)) "order" [ "second"; "tail" ] (List.rev !log)

let test_sim_past_raises () =
  let sim = S.Sim.create () in
  S.Sim.schedule sim ~at:1.0 ignore;
  S.Sim.run sim;
  match S.Sim.schedule sim ~at:0.5 ignore with
  | () -> Alcotest.fail "scheduling in the past should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Dma_engine: service times *)

let test_dma_single_full_rate () =
  let sim = S.Sim.create () in
  let eng = S.Dma_engine.create ~channels:1.0 sim cfg in
  let done_at = ref Float.nan in
  S.Dma_engine.issue eng ~bytes:100 ~demand:2.0 ~on_complete:(fun t ->
      done_at := t);
  S.Sim.run sim;
  check_close "uncontended transfer = demand" 2.0 !done_at;
  Alcotest.(check int) "requests" 1 (S.Dma_engine.requests eng);
  check_close "bytes" 100.0 (S.Dma_engine.bytes_moved eng);
  check_close "busy" 2.0 (S.Dma_engine.busy_seconds eng);
  check_close "no contention" 0.0 (S.Dma_engine.contended_seconds eng)

let test_dma_processor_sharing () =
  (* two equal transfers on one channel each progress at half rate:
     both complete at twice the single-transfer time *)
  let sim = S.Sim.create () in
  let eng = S.Dma_engine.create ~channels:1.0 sim cfg in
  let times = ref [] in
  for _ = 1 to 2 do
    S.Dma_engine.issue eng ~bytes:64 ~demand:1.0 ~on_complete:(fun t ->
        times := t :: !times)
  done;
  S.Sim.run sim;
  List.iter (check_close "shared bus completion" 2.0) !times;
  check_close "bus saturated throughout" 2.0 (S.Dma_engine.contended_seconds eng);
  Alcotest.(check int) "peak in flight" 2 (S.Dma_engine.peak_in_flight eng)

let test_dma_slots_backlog () =
  (* one service slot: transfers serialize through the FIFO backlog
     even though the bus itself has channels to spare *)
  let sim = S.Sim.create () in
  let eng = S.Dma_engine.create ~channels:4.0 ~slots:1 sim cfg in
  let times = ref [] in
  for _ = 1 to 3 do
    S.Dma_engine.issue eng ~bytes:64 ~demand:1.0 ~on_complete:(fun t ->
        times := t :: !times)
  done;
  S.Sim.run sim;
  Alcotest.(check (list (float 1e-9)))
    "FIFO completion times" [ 1.0; 2.0; 3.0 ] (List.rev !times);
  Alcotest.(check int) "slot bound respected" 1 (S.Dma_engine.peak_in_flight eng);
  (* second and third request waited 1 s and 2 s in the backlog *)
  check_close "queue wait" 3.0 (S.Dma_engine.queue_wait_seconds eng)

(* ------------------------------------------------------------------ *)
(* Synthetic pipeline: exact elapsed times *)

let fetch_bytes = 768

(* per-item compute sized so compute >= fetch: the depth-2 steady
   state then hides every fetch but the first *)
let work_glds () =
  let f =
    let c = Swarch.Cost.create () in
    Swarch.Dma.get cfg c ~bytes:fetch_bytes;
    c.Swarch.Cost.dma_time_s
  in
  let g1 =
    let c = Swarch.Cost.create () in
    Swarch.Cost.gld c 1;
    Swarch.Cost.cpe_compute_time cfg c
  in
  if g1 <= 0.0 then Alcotest.fail "gld has no compute cost";
  max 1 (int_of_float (Float.ceil (f /. g1)) * 2)

let record_synthetic ~n =
  let r = S.Recorder.create cfg in
  let cost = Swarch.Cost.create () in
  let k = work_glds () in
  S.Recorder.task r ~id:0 ~cost (fun () ->
      S.Pipeline.run ~sched:r
        ~stages:
          {
            S.Pipeline.fetch =
              (fun _ -> Swarch.Dma.get cfg cost ~bytes:fetch_bytes);
            compute = (fun _ -> Swarch.Cost.gld cost k);
          }
        ~buffers:1 ~n ());
  r

(* (fetch demand, compute work) of every recorded item *)
let item_times r =
  match S.Recorder.phases r with
  | [ { S.Recorder.tasks = [ { S.Recorder.items; _ } ]; _ } ] ->
      List.map
        (fun (it : S.Recorder.item) ->
          let f =
            List.fold_left
              (fun a (x : S.Recorder.xfer) -> a +. x.S.Recorder.demand)
              0.0 it.S.Recorder.prefetch
          in
          let w =
            List.fold_left
              (fun a op ->
                match op with S.Recorder.Work d -> a +. d | _ -> a)
              0.0 it.S.Recorder.body
          in
          (f, w))
        items
  | _ -> Alcotest.fail "unexpected recording shape"

let test_recording_shape () =
  let n = 5 in
  let r = record_synthetic ~n in
  let fw = item_times r in
  Alcotest.(check int) "one item per package" n (List.length fw);
  List.iter
    (fun (f, w) ->
      Alcotest.(check bool) "fetch recorded" true (f > 0.0);
      Alcotest.(check bool) "work recorded" true (w > 0.0);
      Alcotest.(check bool) "compute dominates" true (w >= f))
    fw;
  check_close "bytes conserved"
    (float_of_int (n * fetch_bytes))
    (S.Recorder.total_dma_bytes r)

let test_depth1_degrades_to_serial () =
  let n = 6 in
  let r = record_synthetic ~n in
  let serial =
    List.fold_left (fun a (f, w) -> a +. f +. w) 0.0 (item_times r)
  in
  let s = S.Schedule.run ~channels:4.0 ~buffers:1 cfg r in
  check_close "no lookahead = serial sum" serial s.S.Schedule.elapsed

let test_depth2_hides_fetch () =
  let n = 6 in
  let r = record_synthetic ~n in
  let fw = item_times r in
  let f0 = fst (List.hd fw) in
  let total_w = List.fold_left (fun a (_, w) -> a +. w) 0.0 fw in
  let total_f = List.fold_left (fun a (f, _) -> a +. f) 0.0 fw in
  let serial = total_f +. total_w in
  let ideal = Float.max total_w (total_f /. 4.0) in
  let s2 = S.Schedule.run ~channels:4.0 ~buffers:2 cfg r in
  (* steady state: every fetch after the first hides behind compute *)
  check_close "depth 2 = first fetch + all compute" (f0 +. total_w)
    s2.S.Schedule.elapsed;
  Alcotest.(check bool) "beats serial" true (s2.S.Schedule.elapsed < serial);
  Alcotest.(check bool)
    "never beats ideal overlap" true
    (s2.S.Schedule.elapsed >= ideal -. 1e-15);
  (* deeper buffers cannot be slower here, and stay above the bound *)
  let s4 = S.Schedule.run ~channels:4.0 ~buffers:4 cfg r in
  Alcotest.(check bool)
    "depth 4 <= depth 2" true
    (s4.S.Schedule.elapsed <= s2.S.Schedule.elapsed +. 1e-15);
  Alcotest.(check bool)
    "depth 4 above ideal" true
    (s4.S.Schedule.elapsed >= ideal -. 1e-15)

(* ------------------------------------------------------------------ *)
(* Real kernel: determinism, conservation, bounds *)

let test_replay_deterministic () =
  let p = Swbench.Common.prepare ~particles:600 () in
  let cg = Swarch.Core_group.create cfg in
  let r = S.Recorder.create cfg in
  let spec = Swgmx.Kernel_cpe.spec_of_variant Swgmx.Variant.Mark in
  ignore
    (Swgmx.Kernel_cpe.run ~sched:r p.Swbench.Common.sys p.Swbench.Common.pairs
       cg spec);
  let s1 = S.Schedule.run ~buffers:2 cfg r in
  let s2 = S.Schedule.run ~buffers:2 cfg r in
  Alcotest.(check bool) "bit-identical results" true (s1 = s2);
  Alcotest.(check bool) "events processed" true (s1.S.Schedule.events > 0)

let cpe_dma_bytes (cg : Swarch.Core_group.t) =
  Array.fold_left
    (fun a (c : Swarch.Cpe.t) -> a +. c.Swarch.Cpe.cost.Swarch.Cost.dma_bytes)
    0.0 cg.Swarch.Core_group.cpes

let test_pipelined_conserves_physics () =
  let p = Swbench.Common.prepare ~particles:600 () in
  let cg_s = Swarch.Core_group.create cfg in
  let serial =
    Swgmx.Kernel.run p.Swbench.Common.sys p.Swbench.Common.pairs cg_s
      Swgmx.Variant.Mark
  in
  let cg_p = Swarch.Core_group.create cfg in
  let piped =
    Swgmx.Kernel.run ~pipelined:true p.Swbench.Common.sys
      p.Swbench.Common.pairs cg_p Swgmx.Variant.Mark
  in
  (* the physics runs in unchanged serial order: exact equality *)
  Alcotest.(check bool)
    "forces bit-identical" true
    (serial.Swgmx.Kernel.result.K.force = piped.Swgmx.Kernel.result.K.force);
  Alcotest.(check (float 0.0))
    "e_lj bit-identical" (K.e_lj serial.Swgmx.Kernel.result)
    (K.e_lj piped.Swgmx.Kernel.result);
  Alcotest.(check (float 0.0))
    "e_coul bit-identical" (K.e_coul serial.Swgmx.Kernel.result)
    (K.e_coul piped.Swgmx.Kernel.result);
  check_close "DMA bytes unchanged" (cpe_dma_bytes cg_s) (cpe_dma_bytes cg_p);
  match piped.Swgmx.Kernel.sched with
  | None -> Alcotest.fail "pipelined outcome carries no schedule"
  | Some s ->
      check_close "replay moves the same bytes" (cpe_dma_bytes cg_s)
        s.S.Schedule.dma_bytes

let test_scheduled_between_bounds () =
  (* acceptance: on the Table-1 workload the scheduled time falls
     strictly between the analytic serial and ideal-overlap times, at
     every buffer depth.  (Depth ordering itself is not monotone on
     the real kernel: the i-package prefetch is small next to the
     j-cache demand misses, so contention reshuffling dominates.) *)
  let p = Swbench.Common.prepare ~particles:3000 () in
  List.iter
    (fun buffers ->
      let cg = Swarch.Core_group.create cfg in
      let o =
        Swgmx.Kernel.run ~pipelined:true ~buffers p.Swbench.Common.sys
          p.Swbench.Common.pairs cg Swgmx.Variant.Mark
      in
      let serial = Swarch.Core_group.elapsed cg in
      let overlapped = Swarch.Core_group.elapsed_overlapped cg in
      if
        not
          (o.Swgmx.Kernel.elapsed > overlapped
          && o.Swgmx.Kernel.elapsed < serial)
      then
        Alcotest.failf
          "buffers=%d: scheduled %.6g not strictly inside (%.6g, %.6g)"
          buffers o.Swgmx.Kernel.elapsed overlapped serial)
    [ 1; 2; 4 ]

let test_schedule_spans_sane () =
  let p = Swbench.Common.prepare ~particles:600 () in
  let cg = Swarch.Core_group.create cfg in
  let o =
    Swgmx.Kernel.run ~pipelined:true p.Swbench.Common.sys
      p.Swbench.Common.pairs cg Swgmx.Variant.Mark
  in
  match o.Swgmx.Kernel.sched with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      Alcotest.(check bool) "spans recorded" true (s.S.Schedule.spans <> []);
      List.iter
        (fun (sp : S.Schedule.span) ->
          if sp.S.Schedule.dur < 0.0 then
            Alcotest.failf "span %s has negative duration" sp.S.Schedule.name;
          if sp.S.Schedule.t +. sp.S.Schedule.dur > s.S.Schedule.elapsed +. 1e-12
          then
            Alcotest.failf "span %s ends after the schedule"
              sp.S.Schedule.name)
        s.S.Schedule.spans;
      (* Mark uses deferred write-back, so both phases must appear and
         the last one must end exactly at the elapsed time *)
      Alcotest.(check bool)
        "main phase" true
        (List.mem_assoc "main" s.S.Schedule.phase_ends);
      Alcotest.(check bool)
        "reduce phase" true
        (List.mem_assoc "reduce" s.S.Schedule.phase_ends);
      let last_end =
        List.fold_left
          (fun a (_, e) -> Float.max a e)
          0.0 s.S.Schedule.phase_ends
      in
      check_close "elapsed = last phase end" last_end s.S.Schedule.elapsed

let suites =
  [
    ( "swsched",
      [
        Alcotest.test_case "sim: event ordering" `Quick test_sim_ordering;
        Alcotest.test_case "sim: same-instant FIFO" `Quick
          test_sim_same_instant_appends;
        Alcotest.test_case "sim: past raises" `Quick test_sim_past_raises;
        Alcotest.test_case "dma: single transfer" `Quick
          test_dma_single_full_rate;
        Alcotest.test_case "dma: processor sharing" `Quick
          test_dma_processor_sharing;
        Alcotest.test_case "dma: slot backlog" `Quick test_dma_slots_backlog;
        Alcotest.test_case "recorder: synthetic shape" `Quick
          test_recording_shape;
        Alcotest.test_case "pipeline: depth 1 = serial" `Quick
          test_depth1_degrades_to_serial;
        Alcotest.test_case "pipeline: depth 2 hides fetch" `Quick
          test_depth2_hides_fetch;
        Alcotest.test_case "schedule: deterministic replay" `Quick
          test_replay_deterministic;
        Alcotest.test_case "kernel: physics conserved" `Quick
          test_pipelined_conserves_physics;
        Alcotest.test_case "kernel: bounds bracket scheduled time" `Quick
          test_scheduled_between_bounds;
        Alcotest.test_case "schedule: spans sane" `Quick
          test_schedule_spans_sane;
      ] );
  ]
