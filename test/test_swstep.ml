(* Tests for the swstep phase graph: graph validation, plan
   invariants, and golden serial values pinning the refactored engine
   to the pre-swstep step times. *)

module P = Swstep.Phase
module Pl = Swstep.Plan
module E = Swgmx.Engine

let cfg = Swarch.Config.default

(* ------------------------------------------------------------------ *)
(* Phase graph validation *)

let chip name ?deps () =
  P.v ?deps ~row:"r" name (P.Mpe_analytic (P.per_atom ~flops:1.0 ~bytes:8.0 100))

let test_validate_duplicate () =
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Swstep: duplicate phase \"a\"") (fun () ->
      ignore (P.make ~label:"t" ~rows:[ "r" ] [ chip "a" (); chip "a" () ]))

let test_validate_unknown_dep () =
  Alcotest.check_raises "unknown dep"
    (Invalid_argument "Swstep: phase \"a\" depends on unknown \"ghost\"")
    (fun () ->
      ignore (P.make ~label:"t" ~rows:[ "r" ] [ chip "a" ~deps:[ "ghost" ] () ]))

let test_validate_cycle () =
  Alcotest.check_raises "cycle" (Invalid_argument "Swstep: dependency cycle")
    (fun () ->
      ignore
        (P.make ~label:"t" ~rows:[ "r" ]
           [ chip "a" ~deps:[ "b" ] (); chip "b" ~deps:[ "a" ] () ]))

let test_validate_unlisted_row () =
  Alcotest.check_raises "unlisted row"
    (Invalid_argument "Swstep: phase \"a\" has unlisted row \"r\"") (fun () ->
      ignore (P.make ~label:"t" ~rows:[ "other" ] [ chip "a" () ]))

let test_amortized_interval_positive () =
  let step =
    P.make ~label:"t" ~rows:[ "r" ]
      [ P.v ~row:"r" "a" (P.Amortized (0, chip "inner" ())) ]
  in
  let cg = Swarch.Core_group.create cfg in
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Swstep: Amortized interval must be positive") (fun () ->
      ignore (Pl.run ~cfg ~cg ~t0:0.0 step))

(* ------------------------------------------------------------------ *)
(* Plan invariants on the real engine graph *)

let sum_rows m = List.fold_left (fun a (_, t) -> a +. t) 0.0 (E.rows m)

let test_rows_sum_serial () =
  let m = E.measure ~version:E.V_list ~total_atoms:24000 ~n_cg:8 () in
  Alcotest.(check bool) "rows sum to makespan" true
    (Float.abs (sum_rows m -. m.E.step_time) <= 1e-12 *. m.E.step_time)

let test_rows_sum_overlap () =
  let m =
    E.measure ~plan:Pl.Overlap ~version:E.V_list ~total_atoms:24000 ~n_cg:8 ()
  in
  Alcotest.(check bool) "overlap rows sum to makespan" true
    (Float.abs (sum_rows m -. m.E.step_time) <= 1e-12 *. m.E.step_time)

let test_overlap_bounds () =
  let serial = E.measure ~version:E.V_other ~total_atoms:24000 ~n_cg:16 () in
  let overlap =
    E.measure ~plan:Pl.Overlap ~version:E.V_other ~total_atoms:24000 ~n_cg:16 ()
  in
  Alcotest.(check bool) "overlap <= serial" true
    (overlap.E.step_time <= serial.E.step_time +. 1e-15);
  Alcotest.(check bool) "overlap >= critical path" true
    (overlap.E.step_time >= overlap.E.step.Pl.critical_path -. 1e-15);
  Alcotest.(check bool) "serial sum is an upper bound of critical path" true
    (serial.E.step_time >= serial.E.step.Pl.critical_path -. 1e-15)

let test_overlap_hides_rdma_comm () =
  (* the acceptance ablation: with RDMA, overlapping shrinks the
     exposed "Wait + comm. F" row and hides communication *)
  let serial = E.measure ~version:E.V_other ~total_atoms:24000 ~n_cg:16 () in
  let overlap =
    E.measure ~plan:Pl.Overlap ~version:E.V_other ~total_atoms:24000 ~n_cg:16 ()
  in
  let wait m = E.row m "Wait + comm. F" in
  Alcotest.(check bool) "serial wait positive" true (wait serial > 0.0);
  Alcotest.(check bool) "overlap shrinks wait" true
    (wait overlap < wait serial);
  Alcotest.(check bool) "comm hidden behind compute" true
    (overlap.E.step.Pl.comm_hidden > 0.0);
  Alcotest.(check bool) "hidden + exposed = comm total" true
    (Float.abs
       (overlap.E.step.Pl.comm_hidden
       +. (overlap.E.step.Pl.comm_total -. overlap.E.step.Pl.comm_hidden)
       -. overlap.E.step.Pl.comm_total)
    <= 1e-15)

let test_single_cg_plans_agree () =
  (* no communication: both plans must price the step identically *)
  let serial = E.measure ~version:E.V_cal ~total_atoms:6000 ~n_cg:1 () in
  let overlap =
    E.measure ~plan:Pl.Overlap ~version:E.V_cal ~total_atoms:6000 ~n_cg:1 ()
  in
  Alcotest.(check bool) "same step time" true
    (Float.abs (serial.E.step_time -. overlap.E.step_time)
    <= 1e-12 *. serial.E.step_time)

(* ------------------------------------------------------------------ *)
(* Golden serial values: the refactored engine must reproduce the
   pre-swstep step times (captured from the monolithic Engine.measure
   before the phase-graph rewrite) on the Table-1 workloads. *)

(* tolerance class: physical-drift — golden step times, rel 1e-9 with
   a 1e-15 floor for exactly-zero phase rows *)
let close expected got =
  Swverify.Tol.close (Swverify.Tol.rel_abs ~rel:1e-9 ~abs:1e-15) expected got

let check_golden name m expected_rows expected_total =
  List.iter
    (fun (label, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s %.17g vs %.17g" name label (E.row m label)
           expected)
        true
        (close expected (E.row m label)))
    expected_rows;
  Alcotest.(check bool)
    (Printf.sprintf "%s: total %.17g vs %.17g" name m.E.step_time
       expected_total)
    true
    (close expected_total m.E.step_time)

let test_golden_ori_6000_1 () =
  let m = E.measure ~version:E.V_ori ~total_atoms:6000 ~n_cg:1 () in
  check_golden "Ori 6000/1" m
    [
      ("Domain decomp.", 0.0);
      ("Neighbor search", 0.0036584807172413787);
      ("Force", 0.078715224980697079);
      ("Wait + comm. F", 0.0);
      ("NB X/F buffer ops", 2.213793103448276e-05);
      ("Update", 7.2620689655172413e-05);
      ("Constraints", 0.00025189655172413794);
      ("Comm. energies", 0.0);
      ("Write traj.", 7.3559999999999994e-05);
      ("Rest", 8.0689655172413785e-06);
    ]
    0.082801989835869491;
  Alcotest.(check int) "atoms" 6000 m.E.atoms_per_cg

let test_golden_other_96000_16 () =
  let m = E.measure ~version:E.V_other ~total_atoms:96000 ~n_cg:16 () in
  check_golden "Other 96000/16" m
    [
      ("Domain decomp.", 1.5999999999999999e-06);
      ("Neighbor search", 0.0011996088751399119);
      ("Force", 0.0017985596413929439);
      ("Wait + comm. F", 0.00030613949999999993);
      ("NB X/F buffer ops", 4.8537197936464834e-06);
      ("Update", 1.4755124898180831e-05);
      ("Constraints", 1.8276540863426555e-05);
      ("Comm. energies", 9.5209617062643294e-05);
      ("Write traj.", 6.0399999999999998e-06);
      ("Rest", 8.0689655172413785e-06);
    ]
    0.0034531119846679943;
  Alcotest.(check int) "per-CG atoms" 6000 m.E.atoms_per_cg;
  Alcotest.(check int) "global atoms" 96000 m.E.global_atoms

let test_golden_list_96000_16 () =
  let m = E.measure ~version:E.V_list ~total_atoms:96000 ~n_cg:16 () in
  check_golden "List 96000/16" m
    [
      ("Domain decomp.", 6.8000000000000001e-06);
      ("Neighbor search", 0.0011996088751399119);
      ("Force", 0.0017985596413929439);
      ("Wait + comm. F", 0.00096341850000000002);
      ("NB X/F buffer ops", 4.8537197936464834e-06);
      ("Update", 7.2620689655172413e-05);
      ("Constraints", 0.00025189655172413794);
      ("Comm. energies", 0.00063134110598704629);
      ("Write traj.", 7.3559999999999994e-05);
      ("Rest", 8.0689655172413785e-06);
    ]
    0.0050107280492101012

(* ------------------------------------------------------------------ *)
(* Satellites: atom rounding and config validation at the boundary *)

let test_atoms_rounded_not_truncated () =
  (* 350 atoms over 3 CGs: truncation gave 116 per CG (348 global);
     round-to-nearest gives 117 (351 global) *)
  let m = E.measure ~version:E.V_cal ~total_atoms:350 ~n_cg:3 () in
  Alcotest.(check int) "per-CG atoms rounded" 117 m.E.atoms_per_cg;
  Alcotest.(check int) "modelled global count" 351 m.E.global_atoms

let test_measure_rejects_bad_config () =
  let bad =
    {
      Swarch.Config.default with
      Swarch.Config.dma_points = [| (512, 28.98e9); (8, 0.99e9) |];
    }
  in
  Alcotest.check_raises "unsorted dma curve rejected"
    (Invalid_argument "Platform: dma_points must be size-sorted") (fun () ->
      ignore (E.measure ~cfg:bad ~version:E.V_ori ~total_atoms:600 ~n_cg:1 ()))

let suites =
  [
    ( "swstep.validate",
      [
        Alcotest.test_case "duplicate phase name" `Quick test_validate_duplicate;
        Alcotest.test_case "unknown dependency" `Quick test_validate_unknown_dep;
        Alcotest.test_case "dependency cycle" `Quick test_validate_cycle;
        Alcotest.test_case "unlisted row" `Quick test_validate_unlisted_row;
        Alcotest.test_case "amortized interval" `Quick
          test_amortized_interval_positive;
      ] );
    ( "swstep.plan",
      [
        Alcotest.test_case "serial rows sum to makespan" `Quick
          test_rows_sum_serial;
        Alcotest.test_case "overlap rows sum to makespan" `Quick
          test_rows_sum_overlap;
        Alcotest.test_case "overlap bracketed by bounds" `Slow
          test_overlap_bounds;
        Alcotest.test_case "overlap hides RDMA comm" `Slow
          test_overlap_hides_rdma_comm;
        Alcotest.test_case "single CG: plans agree" `Quick
          test_single_cg_plans_agree;
      ] );
    ( "swstep.golden",
      [
        Alcotest.test_case "Ori 6000 atoms, 1 CG" `Quick test_golden_ori_6000_1;
        Alcotest.test_case "Other 96000 atoms, 16 CGs" `Quick
          test_golden_other_96000_16;
        Alcotest.test_case "List 96000 atoms, 16 CGs" `Quick
          test_golden_list_96000_16;
      ] );
    ( "swstep.boundary",
      [
        Alcotest.test_case "atom count rounded" `Quick
          test_atoms_rounded_not_truncated;
        Alcotest.test_case "bad config rejected" `Quick
          test_measure_rejects_bad_config;
      ] );
  ]
