(* Tests for the swstore subsystem: content addresses, the chunk and
   manifest codecs under hostile input, the LRU cache, the keyed
   store, checkpoint/trajectory objects and the promoted persistent
   measure cache. *)

open Swstore

let corrupt name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Error.Corrupt _ -> true)

let decode_fails name s =
  Alcotest.(check bool) name true (Result.is_error (Chunk.decode s))

let manifest_fails name s =
  Alcotest.(check bool) name true (Result.is_error (Manifest.of_string s))

(* ------------------------------------------------------------------ *)
(* sha256 *)

let test_sha256_vectors () =
  (* FIPS 180-4 test vectors *)
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  Alcotest.(check string) "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_key_shape () =
  Alcotest.(check bool) "hex is a key" true (Sha256.is_key (Sha256.hex "x"));
  Alcotest.(check bool) "uppercase rejected" false
    (Sha256.is_key (String.uppercase_ascii (Sha256.hex "x")));
  Alcotest.(check bool) "short rejected" false (Sha256.is_key "abc123")

(* ------------------------------------------------------------------ *)
(* chunk codec *)

let test_chunk_roundtrip () =
  List.iter
    (fun payload ->
      let c = Chunk.make payload in
      match Chunk.decode (Chunk.encode c) with
      | Ok d ->
          Alcotest.(check string) "payload" payload d.Chunk.payload;
          Alcotest.(check string) "key" c.Chunk.key d.Chunk.key
      | Error e -> Alcotest.failf "roundtrip failed: %s" (Error.to_string e))
    [ ""; "x"; String.make 1000 '\x00';
      String.init 5000 (fun i -> Char.chr (i mod 256)) ]

let test_chunk_split () =
  let payload = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let pieces = Chunk.split ~size:256 payload in
  Alcotest.(check int) "piece count" 4 (List.length pieces);
  Alcotest.(check string) "reassembles" payload (String.concat "" pieces);
  Alcotest.(check int) "empty payload is one piece" 1
    (List.length (Chunk.split ~size:256 ""))

let test_chunk_truncation_fuzz () =
  let encoded = Chunk.encode (Chunk.make "some chunk payload bytes") in
  for len = 0 to String.length encoded - 1 do
    decode_fails
      (Printf.sprintf "prefix %d rejected" len)
      (String.sub encoded 0 len)
  done

let test_chunk_hostile () =
  let c = Chunk.make "payload" in
  let encoded = Chunk.encode c in
  decode_fails "empty" "";
  decode_fails "garbage" "not a chunk at all";
  decode_fails "bad magic" ("swstore-chunk 9\n" ^ c.Chunk.key ^ " 7\npayload");
  decode_fails "bad key shape" "swstore-chunk 1\nzz 7\npayload";
  decode_fails "negative length"
    ("swstore-chunk 1\n" ^ c.Chunk.key ^ " -1\npayload");
  decode_fails "oversized length"
    (Printf.sprintf "swstore-chunk 1\n%s %d\npayload" c.Chunk.key
       (Chunk.max_payload + 1));
  decode_fails "trailing bytes" (encoded ^ "x");
  (* flip one payload byte: the hash no longer matches the key *)
  let b = Bytes.of_string encoded in
  let at = Bytes.length b - 1 in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 1));
  (match Chunk.decode (Bytes.to_string b) with
  | Error (Error.Hash_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "corrupted chunk accepted")

(* ------------------------------------------------------------------ *)
(* manifest codec *)

let sample_manifest () =
  Manifest.v ~kind:"trajectory" ~name:"run-1"
    ~meta:[ ("frames", "3"); ("note", "spaces are fine here") ]
    [ (Sha256.hex "a", 10); (Sha256.hex "b", 0); (Sha256.hex "c", 4096) ]

let test_manifest_roundtrip () =
  let m = sample_manifest () in
  match Manifest.of_string (Manifest.to_string m) with
  | Ok d ->
      Alcotest.(check string) "kind" m.Manifest.kind d.Manifest.kind;
      Alcotest.(check string) "name" m.Manifest.name d.Manifest.name;
      Alcotest.(check int) "chunks" 3 (List.length d.Manifest.chunks);
      Alcotest.(check (option string)) "meta value"
        (Some "spaces are fine here")
        (Manifest.meta_value d "note");
      Alcotest.(check int) "total bytes" 4106 (Manifest.total_bytes d)
  | Error e -> Alcotest.failf "roundtrip failed: %s" (Error.to_string e)

let test_manifest_truncation_fuzz () =
  let encoded = Manifest.to_string (sample_manifest ()) in
  for len = 0 to String.length encoded - 1 do
    manifest_fails
      (Printf.sprintf "prefix %d rejected" len)
      (String.sub encoded 0 len)
  done

let test_manifest_hostile () =
  let good = Manifest.to_string (sample_manifest ()) in
  manifest_fails "empty" "";
  manifest_fails "garbage" "complete nonsense\nmore nonsense\n";
  manifest_fails "bad magic" ("swstore-manifest 9\n" ^ good);
  manifest_fails "missing name" "swstore-manifest 1\nkind kv\nchunks 0\n";
  manifest_fails "bad count" "swstore-manifest 1\nkind kv\nname x\nchunks no\n";
  manifest_fails "count larger than list"
    "swstore-manifest 1\nkind kv\nname x\nchunks 2\n";
  manifest_fails "oversized count"
    (Printf.sprintf "swstore-manifest 1\nkind kv\nname x\nchunks %d\n"
       (Manifest.max_chunks + 1));
  manifest_fails "bad chunk key"
    "swstore-manifest 1\nkind kv\nname x\nchunks 1\nnothex 12\n";
  manifest_fails "oversized chunk size"
    (Printf.sprintf "swstore-manifest 1\nkind kv\nname x\nchunks 1\n%s %d\n"
       (Sha256.hex "a")
       (Chunk.max_payload + 1));
  manifest_fails "trailing junk" (good ^ "extra line\n")

(* ------------------------------------------------------------------ *)
(* the store *)

let test_store_chunk_roundtrip () =
  let s = Store.open_memory () in
  let key = Store.put_chunk s "hello chunks" in
  Alcotest.(check bool) "present" true (Store.has_chunk s key);
  Alcotest.(check string) "read back" "hello chunks" (Store.get_chunk_exn s key);
  (* re-putting identical content dedups *)
  let key2 = Store.put_chunk s "hello chunks" in
  Alcotest.(check string) "same key" key key2;
  Alcotest.(check int) "one chunk stored" 1 (Store.chunk_count s)

let test_store_missing_chunk () =
  let s = Store.open_memory () in
  match Store.get_chunk s (Sha256.hex "nope") with
  | Error (Error.Missing _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "missing chunk returned data"

let test_store_detects_corruption () =
  let s = Store.open_memory () in
  let key = Store.put_chunk s (String.make 100 'q') in
  Store.corrupt_chunk s key ~at:50;
  match Store.get_chunk s key with
  | Error (Error.Hash_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "corrupted chunk returned as data"

let test_store_rejects_bad_names () =
  let s = Store.open_memory () in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "name %S rejected" name)
        true
        (try
           ignore (Store.has_manifest s name);
           false
         with Invalid_argument _ -> true))
    [ ""; "../escape"; "a/b"; ".hidden"; String.make 300 'a' ]

let with_temp_dir f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "swstore-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists root then rm root;
  Fun.protect ~finally:(fun () -> if Sys.file_exists root then rm root)
    (fun () -> f root)

let test_store_dir_backend () =
  with_temp_dir (fun root ->
      let key =
        let s = Store.open_dir root in
        let key = Store.put_chunk s "persistent payload" in
        Store.put_manifest s
          (Manifest.v ~kind:"kv" ~name:"obj" [ (key, 18) ]);
        key
      in
      (* a fresh open sees the same objects *)
      let s = Store.open_dir root in
      Alcotest.(check string) "chunk survives" "persistent payload"
        (Store.get_chunk_exn s key);
      let m = Store.get_manifest_exn s "obj" in
      Alcotest.(check string) "manifest survives" "kv" m.Manifest.kind;
      Alcotest.(check (list string)) "names" [ "obj" ] (Store.manifest_names s);
      (* corruption on disk is detected on read *)
      Store.corrupt_chunk s key ~at:3;
      corrupt "disk corruption detected" (fun () -> Store.get_chunk_exn s key))

(* transient read faults: one EIO from a loaded filesystem must be
   retried (with backoff, mirroring the DMA engine's recovery), while a
   persistent failure must surface as the structured exhaustion error —
   never a silent partial read, never an unbounded spin *)
let with_fault_hook hook f =
  Store.read_fault_hook := hook;
  Fun.protect
    ~finally:(fun () -> Store.read_fault_hook := (fun _ -> ()))
    f

let test_store_read_retries_transient () =
  with_temp_dir (fun root ->
      let s = Store.open_dir root in
      let key = Store.put_chunk s "flaky payload" in
      Store.put_manifest s (Manifest.v ~kind:"kv" ~name:"obj" [ (key, 13) ]);
      let failures = ref 2 in
      with_fault_hook
        (fun _ ->
          if !failures > 0 then begin
            decr failures;
            raise (Sys_error "injected transient EIO")
          end)
        (fun () ->
          Alcotest.(check string) "chunk read recovers" "flaky payload"
            (Store.get_chunk_exn s key);
          Alcotest.(check int) "both injected faults consumed" 0 !failures);
      let failures = ref 2 in
      with_fault_hook
        (fun _ ->
          if !failures > 0 then begin
            decr failures;
            raise (Sys_error "injected transient EIO")
          end)
        (fun () ->
          let m = Store.get_manifest_exn s "obj" in
          Alcotest.(check string) "manifest read recovers" "kv" m.Manifest.kind))

let test_store_read_exhaustion () =
  with_temp_dir (fun root ->
      let s = Store.open_dir root in
      let key = Store.put_chunk s "unreachable payload" in
      with_fault_hook
        (fun _ -> raise (Sys_error "injected persistent EIO"))
        (fun () ->
          match Store.get_chunk s key with
          | Error (Error.Io_exhausted { attempts; last; _ }) ->
              Alcotest.(check int) "first try + every retry counted"
                (1 + !Store.read_retries) attempts;
              Alcotest.(check string) "last OS error preserved"
                "injected persistent EIO" last
          | Error e ->
              Alcotest.failf "expected Io_exhausted, got %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "read of faulted path succeeded");
      (* the store recovers as soon as the fault clears *)
      Alcotest.(check string) "healthy again" "unreachable payload"
        (Store.get_chunk_exn s key))

(* ------------------------------------------------------------------ *)
(* the cache *)

let test_cache_hit_miss_counting () =
  let cache = Cache.create (Store.open_memory ()) in
  let key = Cache.put cache "cached payload" in
  ignore (Cache.get_exn cache key);
  ignore (Cache.get_exn cache key);
  let s = Cache.stats cache in
  Alcotest.(check int) "hits" 2 s.Swcache.Stats.hits;
  Alcotest.(check int) "misses" 0 s.Swcache.Stats.misses;
  Alcotest.(check int) "writebacks" 1 s.Swcache.Stats.writebacks;
  Cache.clear cache;
  ignore (Cache.get_exn cache key);
  Alcotest.(check int) "miss after clear" 1 s.Swcache.Stats.misses;
  Alcotest.(check int) "refilled" 1 (Cache.entries cache)

let test_cache_lru_eviction () =
  (* room for exactly two 100-byte chunks; the least recently used one
     is displaced *)
  let cache = Cache.create ~capacity:200 (Store.open_memory ()) in
  let ka = Cache.put cache (String.make 100 'a') in
  let kb = Cache.put cache (String.make 100 'b') in
  ignore (Cache.get_exn cache ka);
  (* a third chunk displaces b (a was used more recently) *)
  let _kc = Cache.put cache (String.make 100 'c') in
  let s = Cache.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Swcache.Stats.evictions;
  Alcotest.(check int) "two resident" 2 (Cache.entries cache);
  Alcotest.(check int) "bytes bounded" 200 (Cache.used_bytes cache);
  (* b refills from the store on demand — nothing was lost *)
  let before = s.Swcache.Stats.misses in
  Alcotest.(check string) "b still readable" (String.make 100 'b')
    (Cache.get_exn cache kb);
  Alcotest.(check int) "b was a miss" (before + 1) s.Swcache.Stats.misses

let test_cache_evict_and_oversized () =
  let cache = Cache.create ~capacity:100 (Store.open_memory ()) in
  let k = Cache.put cache "small" in
  Alcotest.(check bool) "resident evicted" true (Cache.evict cache k);
  Alcotest.(check bool) "already gone" false (Cache.evict cache k);
  (* an over-budget chunk passes through without flushing the cache *)
  let k2 = Cache.put cache "tiny" in
  let _big = Cache.put cache (String.make 200 'B') in
  Alcotest.(check int) "tiny still resident" 1 (Cache.entries cache);
  ignore (Cache.get_exn cache k2)

let test_cache_propagates_corruption () =
  let cache = Cache.create (Store.open_memory ()) in
  let key = Cache.put cache (String.make 64 'z') in
  Cache.clear cache;
  Store.corrupt_chunk (Cache.store cache) key ~at:10;
  corrupt "cache read fails loudly" (fun () -> Cache.get_exn cache key)

(* ------------------------------------------------------------------ *)
(* the keyed store *)

let test_kv_roundtrip () =
  let kv = Kv.create (Cache.create (Store.open_memory ())) in
  let key = [ "measure"; "sw26010"; "Other"; "serial"; "3000"; "4"; "-" ] in
  Alcotest.(check bool) "absent" false (Kv.mem kv ~key);
  Alcotest.(check (option string)) "miss" None (Kv.get kv ~key);
  let value = String.init 3000 (fun i -> Char.chr (i mod 251)) in
  Kv.put kv ~key value;
  Alcotest.(check bool) "present" true (Kv.mem kv ~key);
  Alcotest.(check (option string)) "hit" (Some value) (Kv.get kv ~key);
  let s = Kv.stats kv in
  Alcotest.(check int) "one key hit" 1 s.Swcache.Stats.hits;
  Alcotest.(check int) "one key miss" 1 s.Swcache.Stats.misses;
  (* a different fault-plan component is a different key *)
  Alcotest.(check (option string)) "fault plan in key" None
    (Kv.get kv ~key:[ "measure"; "sw26010"; "Other"; "serial"; "3000"; "4"; "ldm_flip=0.5#7" ])

let test_kv_damaged_store_raises () =
  let cache = Cache.create (Store.open_memory ()) in
  let kv = Kv.create cache in
  Kv.put kv ~key:[ "k" ] (String.make 500 'v');
  Cache.clear cache;
  let chunk_key = Chunk.key (String.make 500 'v') in
  Store.corrupt_chunk (Cache.store cache) chunk_key ~at:100;
  corrupt "damaged value raises, not miss" (fun () -> Kv.get kv ~key:[ "k" ])

let test_kv_persists_across_reopen () =
  with_temp_dir (fun root ->
      let key = [ "persist"; "check" ] in
      (let kv = Kv.create (Cache.create (Store.open_dir root)) in
       Kv.put kv ~key "survives the process");
      let kv = Kv.create (Cache.create (Store.open_dir root)) in
      Alcotest.(check (option string)) "reopened" (Some "survives the process")
        (Kv.get kv ~key))

(* ------------------------------------------------------------------ *)
(* domain objects *)

let test_checkpoint_object_roundtrip () =
  let cache = Cache.create (Store.open_memory ()) in
  let n = 5 in
  let pos = Swio.Fvec.of_array (Array.init (3 * n) (fun i -> 0.1 *. float_of_int i)) in
  let vel = Swio.Fvec.of_array (Array.init (3 * n) (fun i -> -0.01 *. float_of_int i)) in
  let ck =
    Swio.Checkpoint.capture ~platform:"sw26010" ~step:20 ~pos ~vel ~n_atoms:n ()
  in
  Objects.put_checkpoint cache ~name:"head" ck;
  let back = Objects.get_checkpoint cache ~name:"head" in
  (* the serialized forms must be byte-identical: restart depends on it *)
  Alcotest.(check string) "bit identical"
    (Swio.Checkpoint.to_string ck)
    (Swio.Checkpoint.to_string back)

let test_checkpoint_object_corruption () =
  let cache = Cache.create (Store.open_memory ()) in
  let pos = Swio.Fvec.of_array (Array.make 9 1.0)
  and vel = Swio.Fvec.of_array (Array.make 9 0.0) in
  let ck = Swio.Checkpoint.capture ~step:0 ~pos ~vel ~n_atoms:3 () in
  Objects.put_checkpoint cache ~name:"head" ck;
  (* damage the one chunk behind the object, drop the cached copy *)
  let m = Store.get_manifest_exn (Cache.store cache) "head" in
  let chunk_key, _ = List.hd m.Manifest.chunks in
  Cache.clear cache;
  Store.corrupt_chunk (Cache.store cache) chunk_key ~at:0;
  corrupt "corrupt checkpoint rejected" (fun () ->
      Objects.get_checkpoint cache ~name:"head")

let test_trajectory_object () =
  let cache = Cache.create (Store.open_memory ()) in
  let frame step =
    let pos = Swio.Fvec.of_array (Array.init 9 (fun i -> float_of_int (step + i) *. 0.25)) in
    Swio.Xtc.encode ~step ~precision:1000.0 pos ~n:3
  in
  Objects.append_frame cache ~name:"traj" (frame 0);
  Objects.append_frame cache ~name:"traj" (frame 10);
  Objects.append_frame cache ~name:"traj" (frame 20);
  let frames = Objects.get_frames cache ~name:"traj" in
  Alcotest.(check int) "three frames" 3 (List.length frames);
  Alcotest.(check (list int)) "steps in order" [ 0; 10; 20 ]
    (List.map (fun (f : Swio.Xtc.frame) -> f.Swio.Xtc.step) frames);
  (* a checkpoint name is not a trajectory *)
  let pos = Swio.Fvec.of_array (Array.make 9 0.0) in
  let ck = Swio.Checkpoint.capture ~step:0 ~pos ~vel:pos ~n_atoms:3 () in
  Objects.put_checkpoint cache ~name:"head" ck;
  corrupt "kind mismatch rejected" (fun () ->
      Objects.get_frames cache ~name:"head")

(* ------------------------------------------------------------------ *)
(* measurement persistence + the promoted measure cache *)

let test_plan_result_roundtrip () =
  let m =
    Swgmx.Engine.measure ~version:Swgmx.Engine.V_other ~total_atoms:600 ~n_cg:2 ()
  in
  let r = m.Swgmx.Engine.step in
  match Swstep.Plan.result_of_string (Swstep.Plan.result_to_string r) with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok d ->
      Alcotest.(check string) "label" r.Swstep.Plan.label d.Swstep.Plan.label;
      Alcotest.(check bool) "total bit-exact" true
        (r.Swstep.Plan.total = d.Swstep.Plan.total);
      Alcotest.(check bool) "rows bit-exact" true
        (r.Swstep.Plan.rows = d.Swstep.Plan.rows);
      Alcotest.(check bool) "segments bit-exact" true
        (r.Swstep.Plan.segments = d.Swstep.Plan.segments);
      Alcotest.(check int) "phases dropped" 0
        (List.length d.Swstep.Plan.phases)

let test_plan_result_hostile () =
  let fails name s =
    Alcotest.(check bool) name true
      (Result.is_error (Swstep.Plan.result_of_string s))
  in
  fails "empty" "";
  fails "garbage" "what\nis\nthis\n";
  fails "bad count" "swstep-result 1\nlabel x\nmode serial\ntotal 0x1p+0\ncritical_path 0x1p+0\ncompute_window 0x1p+0\ncomm_total 0x1p+0\ncomm_hidden 0x1p+0\nrows nope\n";
  let m =
    Swgmx.Engine.measure ~version:Swgmx.Engine.V_ori ~total_atoms:600 ~n_cg:2 ()
  in
  let good = Swstep.Plan.result_to_string m.Swgmx.Engine.step in
  fails "trailing junk" (good ^ "extra\n");
  for len = 1 to String.length good - 1 do
    if len mod 7 = 0 then
      fails (Printf.sprintf "prefix %d" len) (String.sub good 0 len)
  done

let test_measurement_roundtrip () =
  let m =
    Swgmx.Engine.measure ~version:Swgmx.Engine.V_other ~total_atoms:600 ~n_cg:2 ()
  in
  match
    Swgmx.Engine.measurement_of_string (Swgmx.Engine.measurement_to_string m)
  with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok d ->
      Alcotest.(check bool) "step_time bit-exact" true
        (m.Swgmx.Engine.step_time = d.Swgmx.Engine.step_time);
      Alcotest.(check int) "atoms" m.Swgmx.Engine.atoms_per_cg
        d.Swgmx.Engine.atoms_per_cg;
      Alcotest.(check bool) "rows bit-exact" true
        (Swgmx.Engine.rows m = Swgmx.Engine.rows d)

let test_measure_store_serves_repeats () =
  let kv = Kv.create (Cache.create (Store.open_memory ())) in
  Swbench.Common.set_measure_store (Some kv);
  Fun.protect
    ~finally:(fun () -> Swbench.Common.set_measure_store None)
    (fun () ->
      let call () =
        Swbench.Common.measure_via ~version:Swgmx.Engine.V_cal ~total_atoms:600
          ~n_cg:2 ()
      in
      let m1, src1 = call () in
      let m2, src2 = call () in
      Alcotest.(check bool) "first computed" true (src1 = Swbench.Common.Computed);
      Alcotest.(check bool) "repeat from store" true
        (src2 = Swbench.Common.Stored);
      Alcotest.(check bool) "identical step time" true
        (m1.Swgmx.Engine.step_time = m2.Swgmx.Engine.step_time);
      Alcotest.(check bool) "identical rows" true
        (Swgmx.Engine.rows m1 = Swgmx.Engine.rows m2))

let test_measure_memo_keyed_by_faults () =
  (* the in-process memo must not hit across fault plans *)
  let healthy =
    Swbench.Common.measure ~version:Swgmx.Engine.V_other ~total_atoms:600
      ~n_cg:2 ()
  in
  let inj =
    Swfault.Injector.create ~seed:3
      (Swfault.Plan.of_string "cpe_slow=0:4.0,cpe_slow=1:4.0")
  in
  let degraded =
    Swbench.Common.measure ~faults:inj ~version:Swgmx.Engine.V_other
      ~total_atoms:600 ~n_cg:2 ()
  in
  Alcotest.(check bool) "fault plan changes the measurement" true
    (healthy.Swgmx.Engine.step_time <> degraded.Swgmx.Engine.step_time)

(* ------------------------------------------------------------------ *)
(* restart through the store, bit-identical *)

let test_restart_from_store_bit_identical () =
  let cache = Cache.create (Store.open_memory ()) in
  let molecules = 8 and seed = 5 and steps = 20 and sample_every = 2 in
  let reference, _, _ =
    Swgmx.Engine.simulate_protected ~checkpoint_every:10 ~molecules ~seed
      ~steps ~sample_every ()
  in
  (* a run that checkpoints into the store, stopped at step 10 *)
  let _, _, _ =
    Swgmx.Engine.simulate_protected ~checkpoint_every:10
      ~on_checkpoint:(Swgmx.Engine.checkpoint_sink cache ~name:"head")
      ~molecules ~seed ~steps:10 ~sample_every ()
  in
  let ck = Swgmx.Engine.restart_of_store cache ~name:"head" in
  Alcotest.(check int) "restart step" 10 ck.Swio.Checkpoint.step;
  let resumed, _, _ =
    Swgmx.Engine.simulate_protected ~restart:ck ~molecules ~seed ~steps
      ~sample_every ()
  in
  let tail smps =
    List.filter (fun (s : Swgmx.Engine.sample) -> s.Swgmx.Engine.step > 10) smps
  in
  Alcotest.(check int) "resumed sample count"
    (List.length (tail reference))
    (List.length (tail resumed));
  List.iter2
    (fun (a : Swgmx.Engine.sample) (b : Swgmx.Engine.sample) ->
      Alcotest.(check int) "step" a.Swgmx.Engine.step b.Swgmx.Engine.step;
      Alcotest.(check bool) "energy bit-identical" true
        (a.Swgmx.Engine.total_energy = b.Swgmx.Engine.total_energy);
      Alcotest.(check bool) "temperature bit-identical" true
        (a.Swgmx.Engine.temperature = b.Swgmx.Engine.temperature))
    (tail reference) (tail resumed)

(* ------------------------------------------------------------------ *)
(* batch manifests *)

let test_batch_parse () =
  let jobs =
    Swbench.Batch.parse_manifest
      "# comment\n\
       kind=measure name=a version=Other plan=overlap atoms=1200 n_cg=2\n\
       \n\
       kind=simulate molecules=8 steps=10 seed=3 # trailing comment\n\
       kind=measure name=c faults=cpe_dead=5 fault_seed=9\n"
  in
  Alcotest.(check int) "three jobs" 3 (List.length jobs);
  let a = List.nth jobs 0 and b = List.nth jobs 1 and c = List.nth jobs 2 in
  Alcotest.(check string) "name" "a" a.Swbench.Batch.name;
  (match a.Swbench.Batch.kind with
  | Swbench.Batch.Measure p ->
      Alcotest.(check int) "atoms" 1200 p.Swbench.Batch.atoms;
      Alcotest.(check bool) "plan" true (p.Swbench.Batch.plan = Swstep.Plan.Overlap)
  | _ -> Alcotest.fail "job a should be measure");
  (match b.Swbench.Batch.kind with
  | Swbench.Batch.Simulate d ->
      Alcotest.(check int) "steps" 10 d.Swbench.Batch.steps
  | _ -> Alcotest.fail "job b should be simulate");
  Alcotest.(check string) "faults kept" "cpe_dead=5" c.Swbench.Batch.faults

let test_batch_parse_rejects () =
  let rejects name text =
    Alcotest.(check bool) name true
      (try
         ignore (Swbench.Batch.parse_manifest text);
         false
       with Invalid_argument _ -> true)
  in
  rejects "missing kind" "name=x atoms=100\n";
  rejects "unknown kind" "kind=frobnicate\n";
  rejects "unknown key" "kind=measure what=ever\n";
  rejects "bad int" "kind=measure atoms=lots\n";
  rejects "bad version" "kind=measure version=V9\n";
  rejects "bad plan" "kind=measure plan=sideways\n";
  rejects "bad fault spec" "kind=measure faults=zorp=1\n";
  rejects "bare token" "kind=measure standalone\n"

let test_batch_run_serves_repeat () =
  let cache = Cache.create (Store.open_memory ()) in
  let kv = Kv.create ~ns:"batch" cache in
  let jobs =
    Swbench.Batch.parse_manifest
      "kind=measure name=first version=Cal atoms=600 n_cg=2\n\
       kind=measure name=other version=Ori atoms=600 n_cg=2\n\
       kind=measure name=again version=Cal atoms=600 n_cg=2\n"
  in
  Swbench.Common.set_measure_store (Some kv);
  let outcomes, wall_s =
    Fun.protect
      ~finally:(fun () -> Swbench.Common.set_measure_store None)
      (fun () -> Swbench.Batch.run ~kv jobs)
  in
  let served = List.map (fun o -> o.Swbench.Batch.served) outcomes in
  Alcotest.(check bool) "first computed" true
    (List.nth served 0 = Swbench.Common.Computed);
  Alcotest.(check bool) "repeat stored" true
    (List.nth served 2 = Swbench.Common.Stored);
  Alcotest.(check bool) "identical headline" true
    ((List.nth outcomes 0).Swbench.Batch.headline
    = (List.nth outcomes 2).Swbench.Batch.headline);
  (* the JSON report carries the store_* counters *)
  let module J = Swtrace.Json in
  match Swbench.Batch.json_report ~kv ~cache ~wall_s outcomes with
  | J.Obj fields ->
      Alcotest.(check bool) "jobs present" true (List.mem_assoc "jobs" fields);
      (match List.assoc "store" fields with
      | J.Obj store ->
          Alcotest.(check bool) "key_hits present" true
            (List.mem_assoc "key_hits" store)
      | _ -> Alcotest.fail "store section is not an object")
  | _ -> Alcotest.fail "report is not an object"

let suites =
  [
    ( "swstore.sha256",
      [
        Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "key shape" `Quick test_sha256_key_shape;
      ] );
    ( "swstore.chunk",
      [
        Alcotest.test_case "roundtrip" `Quick test_chunk_roundtrip;
        Alcotest.test_case "split" `Quick test_chunk_split;
        Alcotest.test_case "truncation fuzz" `Quick test_chunk_truncation_fuzz;
        Alcotest.test_case "hostile input" `Quick test_chunk_hostile;
      ] );
    ( "swstore.manifest",
      [
        Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
        Alcotest.test_case "truncation fuzz" `Quick
          test_manifest_truncation_fuzz;
        Alcotest.test_case "hostile input" `Quick test_manifest_hostile;
      ] );
    ( "swstore.store",
      [
        Alcotest.test_case "chunk roundtrip + dedup" `Quick
          test_store_chunk_roundtrip;
        Alcotest.test_case "missing chunk" `Quick test_store_missing_chunk;
        Alcotest.test_case "detects corruption" `Quick
          test_store_detects_corruption;
        Alcotest.test_case "rejects bad names" `Quick
          test_store_rejects_bad_names;
        Alcotest.test_case "directory backend" `Quick test_store_dir_backend;
        Alcotest.test_case "transient read faults retried" `Quick
          test_store_read_retries_transient;
        Alcotest.test_case "read retry exhaustion" `Quick
          test_store_read_exhaustion;
      ] );
    ( "swstore.cache",
      [
        Alcotest.test_case "hit/miss counting" `Quick
          test_cache_hit_miss_counting;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "evict + oversized" `Quick
          test_cache_evict_and_oversized;
        Alcotest.test_case "propagates corruption" `Quick
          test_cache_propagates_corruption;
      ] );
    ( "swstore.kv",
      [
        Alcotest.test_case "roundtrip" `Quick test_kv_roundtrip;
        Alcotest.test_case "damaged store raises" `Quick
          test_kv_damaged_store_raises;
        Alcotest.test_case "persists across reopen" `Quick
          test_kv_persists_across_reopen;
      ] );
    ( "swstore.objects",
      [
        Alcotest.test_case "checkpoint roundtrip" `Quick
          test_checkpoint_object_roundtrip;
        Alcotest.test_case "checkpoint corruption" `Quick
          test_checkpoint_object_corruption;
        Alcotest.test_case "trajectory" `Quick test_trajectory_object;
      ] );
    ( "swstore.measure",
      [
        Alcotest.test_case "plan result roundtrip" `Quick
          test_plan_result_roundtrip;
        Alcotest.test_case "plan result hostile" `Quick
          test_plan_result_hostile;
        Alcotest.test_case "measurement roundtrip" `Quick
          test_measurement_roundtrip;
        Alcotest.test_case "store serves repeats" `Quick
          test_measure_store_serves_repeats;
        Alcotest.test_case "memo keyed by faults" `Quick
          test_measure_memo_keyed_by_faults;
      ] );
    ( "swstore.restart",
      [
        Alcotest.test_case "store restart bit-identical" `Quick
          test_restart_from_store_bit_identical;
      ] );
    ( "swstore.batch",
      [
        Alcotest.test_case "parse" `Quick test_batch_parse;
        Alcotest.test_case "parse rejects" `Quick test_batch_parse_rejects;
        Alcotest.test_case "repeat served from store" `Quick
          test_batch_run_serves_repeat;
      ] );
  ]
