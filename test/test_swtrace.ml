(* Tests for the swtrace tracing & metrics subsystem. *)

module T = Swtrace.Trace
module Track = Swtrace.Track
module Event = Swtrace.Event
module Json = Swtrace.Json

let cfg = Swarch.Config.default

(* Every test that records must start from a clean recorder and leave
   it off, or state leaks across the suite. *)
let with_trace f =
  T.enable ();
  Fun.protect ~finally:(fun () -> T.disable ()) f

(* ------------------------------------------------------------------ *)
(* Span nesting *)

let test_span_nesting () =
  with_trace (fun () ->
      T.push ~cat:"outer" Track.Mpe "outer";
      T.advance Track.Mpe 1.0;
      T.push ~cat:"inner" Track.Mpe "inner";
      Alcotest.(check int) "two open spans" 2 (T.depth Track.Mpe);
      T.advance Track.Mpe 2.0;
      T.pop Track.Mpe;
      T.advance Track.Mpe 1.0;
      T.pop Track.Mpe;
      Alcotest.(check int) "all spans closed" 0 (T.depth Track.Mpe);
      let spans =
        List.filter (fun e -> e.Event.kind = Event.Span) (T.events ())
      in
      let find name = List.find (fun e -> e.Event.name = name) spans in
      let outer = find "outer" and inner = find "inner" in
      Alcotest.(check (float 1e-12)) "inner start" 1.0 inner.Event.t;
      Alcotest.(check (float 1e-12)) "inner duration" 2.0 inner.Event.dur;
      Alcotest.(check (float 1e-12)) "outer start" 0.0 outer.Event.t;
      Alcotest.(check (float 1e-12)) "outer duration" 4.0 outer.Event.dur;
      (* nesting: inner lies strictly within outer *)
      Alcotest.(check bool) "inner within outer" true
        (inner.Event.t >= outer.Event.t
        && Event.end_time inner <= Event.end_time outer))

let test_unmatched_pop_ignored () =
  with_trace (fun () ->
      T.pop Track.Mpe;
      Alcotest.(check int) "no events" 0 (T.event_count ()))

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counter_accumulation () =
  with_trace (fun () ->
      let cost = Swarch.Cost.create () in
      Swarch.Cost.gld cost 1;
      Swarch.Cost.gld cost 2;
      Swarch.Cost.gld cost 3;
      let samples =
        List.filter_map
          (fun e ->
            if e.Event.kind = Event.Counter && e.Event.name = "gld" then
              Some e.Event.value
            else None)
          (T.events ())
      in
      (* each charge samples the running total: 1, 1+2, 1+2+3 *)
      Alcotest.(check (list (float 1e-12))) "cumulative samples"
        [ 1.0; 3.0; 6.0 ] samples)

(* ------------------------------------------------------------------ *)
(* JSON export parse-back *)

let test_json_roundtrip () =
  with_trace (fun () ->
      T.span ~cat:"kernel" ~args:[ ("flops", 12.5) ] Track.Mpe "k" ~t:1e-3
        ~dur:2e-3;
      T.counter Track.(Cpe 7) "ldm" 4096.0;
      let doc =
        match Json.of_string (Swtrace.Chrome.to_string (T.events ())) with
        | Ok j -> j
        | Error msg -> Alcotest.failf "exported trace does not parse: %s" msg
      in
      let events =
        match Json.member "traceEvents" doc with
        | Some (Json.Arr evs) -> evs
        | _ -> Alcotest.fail "missing traceEvents array"
      in
      let str ev key =
        match Json.member key ev with Some (Json.Str s) -> Some s | _ -> None
      in
      let num ev key =
        match Json.member key ev with
        | Some (Json.Num n) -> n
        | _ -> Alcotest.failf "missing numeric field %s" key
      in
      let span =
        List.find (fun ev -> str ev "name" = Some "k") events
      in
      Alcotest.(check (option string)) "complete event" (Some "X")
        (str span "ph");
      (* microseconds of simulated time *)
      Alcotest.(check (float 1e-9)) "ts in us" 1000.0 (num span "ts");
      Alcotest.(check (float 1e-9)) "dur in us" 2000.0 (num span "dur");
      (match Json.member "args" span with
      | Some args ->
          Alcotest.(check (float 1e-12)) "args survive" 12.5 (num args "flops")
      | None -> Alcotest.fail "span lost its args");
      let counter =
        List.find (fun ev -> str ev "name" = Some "ldm") events
      in
      Alcotest.(check (option string)) "counter event" (Some "C")
        (str counter "ph");
      Alcotest.(check (float 1e-12)) "counter tid" 8.0 (num counter "tid"))

let test_json_parser_rejects_garbage () =
  (match Json.of_string "{\"a\": [1, 2" with
  | Ok _ -> Alcotest.fail "truncated JSON accepted"
  | Error _ -> ());
  match Json.of_string "" with
  | Ok _ -> Alcotest.fail "empty input accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Disabled mode *)

let test_disabled_no_output () =
  with_trace (fun () -> ());
  (* recorder is now off, with empty rings from the enable above *)
  T.clear ();
  T.span Track.Mpe "s" ~t:0.0 ~dur:1.0;
  T.span_here Track.Mpe "sh" ~dur:1.0;
  T.instant Track.Mpe "i";
  T.counter Track.Mpe "c" 1.0;
  T.dma_transfer ~bytes:256 ~time:1e-8;
  T.push Track.Mpe "p";
  T.pop Track.Mpe;
  Alcotest.(check int) "nothing recorded" 0 (T.event_count ());
  Alcotest.(check (float 0.0)) "clock untouched" 0.0 (T.now Track.Mpe)

let test_disabled_zero_allocation () =
  T.disable ();
  (* warm up so any one-time allocation is done *)
  T.span_here Track.Mpe "noop" ~dur:1e-9;
  T.counter Track.Mpe "c" 0.0;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    T.span_here Track.Mpe "noop" ~dur:1e-9;
    T.instant Track.Mpe "i";
    T.counter Track.Mpe "c" 0.0;
    T.dma_transfer ~bytes:64 ~time:1e-9;
    T.push Track.Mpe "p";
    T.pop Track.Mpe
  done;
  let allocated = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "no allocation when disabled (%.0f words)" allocated)
    true (allocated <= 0.0)

(* ------------------------------------------------------------------ *)
(* DMA histogram *)

let test_dma_histogram_bucketing () =
  with_trace (fun () ->
      let emit bytes = T.dma_transfer ~bytes ~time:1e-8 in
      emit 8;
      emit 128;
      (* boundary: 128 belongs to the (64, 128] bucket *)
      emit 129;
      emit 300;
      emit 300;
      emit 5000;
      (* a non-dma instant must not pollute the histogram *)
      T.instant ~cat:"phase-detail" Track.Mpe "reduction";
      let buckets = Swtrace.Analysis.dma_histogram (T.events ()) in
      let total = List.fold_left (fun a b -> a + b.Swtrace.Analysis.transfers) 0 buckets in
      Alcotest.(check int) "all transfers bucketed" 6 total;
      let find lo =
        List.find (fun b -> b.Swtrace.Analysis.lo = lo) buckets
      in
      Alcotest.(check int) "128 lands in (64,128]" 1 (find 65).Swtrace.Analysis.transfers;
      Alcotest.(check int) "129 lands in (128,256]" 1 (find 129).Swtrace.Analysis.transfers;
      Alcotest.(check int) "300s land in (256,512]" 2 (find 257).Swtrace.Analysis.transfers;
      Alcotest.(check int) "oversize lands in open bucket" 1
        (find 4097).Swtrace.Analysis.transfers;
      Alcotest.(check (float 1e-6)) "bucket bytes summed" 600.0
        (find 257).Swtrace.Analysis.bytes)

let test_dma_histogram_matches_bandwidth_curve () =
  with_trace (fun () ->
      (* charge one real transfer through the simulator and check the
         histogram reproduces the Table 2 bandwidth point *)
      let cost = Swarch.Cost.create () in
      Swarch.Dma.get cfg cost ~bytes:512;
      match Swtrace.Analysis.dma_histogram (T.events ()) with
      | [ b ] ->
          Alcotest.(check int) "one transfer" 1 b.Swtrace.Analysis.transfers;
          let expected = Swarch.Dma.bandwidth cfg 512 in
          let got = Swtrace.Analysis.bucket_bw b in
          Alcotest.(check (float 1e-3)) "achieved = modelled bandwidth" 1.0
            (got /. expected)
      | bs -> Alcotest.failf "expected one bucket, got %d" (List.length bs))

(* ------------------------------------------------------------------ *)
(* Observer effect: tracing must not change simulated results *)

let test_tracing_does_not_change_measurement () =
  let run () =
    Swgmx.Engine.measure ~version:Swgmx.Engine.V_other ~total_atoms:6000
      ~n_cg:4 ()
  in
  let plain = run () in
  let traced = with_trace (fun () -> run ()) in
  Alcotest.(check bool) "traced events exist" true (T.event_count () > 0);
  Alcotest.(check bool) "bit-identical step time" true
    (plain.Swgmx.Engine.step_time = traced.Swgmx.Engine.step_time);
  Alcotest.(check bool) "bit-identical breakdown" true
    (Swgmx.Engine.rows plain = Swgmx.Engine.rows traced)

let test_tracing_does_not_change_kernel_result () =
  let run () =
    let st = Mdcore.Water.build ~molecules:60 ~seed:5 () in
    let n = Mdcore.Md_state.n_atoms st in
    let box = st.Mdcore.Md_state.box in
    let rcut = Float.min 0.9 (0.45 *. Mdcore.Box.min_edge box) in
    let params =
      { Mdcore.Nonbonded.rcut; elec = Mdcore.Nonbonded.Reaction_field }
    in
    let cl = Mdcore.Cluster.build box st.Mdcore.Md_state.pos n in
    let sys =
      Swgmx.Kernel_common.make cfg ~box ~params ~cl ~topo:st.Mdcore.Md_state.topo
        ~ff:st.Mdcore.Md_state.ff ~pos:st.Mdcore.Md_state.pos
    in
    let pairs =
      Mdcore.Pair_list.build box cl ~pos:st.Mdcore.Md_state.pos ~rlist:rcut ()
    in
    let cg = Swarch.Core_group.create cfg in
    let outcome = Swgmx.Kernel.run sys pairs cg Swgmx.Variant.Mark in
    ( outcome.Swgmx.Kernel.elapsed,
      (Swgmx.Kernel_common.e_lj outcome.Swgmx.Kernel.result),
      (Swgmx.Kernel_common.e_coul outcome.Swgmx.Kernel.result) )
  in
  let plain = run () in
  let traced = with_trace (fun () -> run ()) in
  Alcotest.(check bool) "bit-identical kernel outcome" true (plain = traced)

(* ------------------------------------------------------------------ *)
(* Roofline consistency with the cost model *)

let test_roofline_matches_cost () =
  with_trace (fun () ->
      let st = Mdcore.Water.build ~molecules:60 ~seed:7 () in
      let n = Mdcore.Md_state.n_atoms st in
      let box = st.Mdcore.Md_state.box in
      let rcut = Float.min 0.9 (0.45 *. Mdcore.Box.min_edge box) in
      let params =
        { Mdcore.Nonbonded.rcut; elec = Mdcore.Nonbonded.Reaction_field }
      in
      let cl = Mdcore.Cluster.build box st.Mdcore.Md_state.pos n in
      let sys =
        Swgmx.Kernel_common.make cfg ~box ~params ~cl
          ~topo:st.Mdcore.Md_state.topo ~ff:st.Mdcore.Md_state.ff
          ~pos:st.Mdcore.Md_state.pos
      in
      let pairs =
        Mdcore.Pair_list.build box cl ~pos:st.Mdcore.Md_state.pos ~rlist:rcut ()
      in
      let cg = Swarch.Core_group.create cfg in
      let outcome = Swgmx.Kernel.run sys pairs cg Swgmx.Variant.Mark in
      let total = Swarch.Core_group.total_cost cg in
      match Swtrace.Analysis.roofline (T.events ()) with
      | [ k ] ->
          Alcotest.(check string) "kernel name" "kernel:Mark"
            k.Swtrace.Analysis.name;
          Alcotest.(check (float 1e-9)) "span time = elapsed"
            outcome.Swgmx.Kernel.elapsed k.Swtrace.Analysis.time;
          Alcotest.(check (float 1e-6)) "dma bytes = Cost.dma_bytes"
            total.Swarch.Cost.dma_bytes k.Swtrace.Analysis.dma_bytes;
          Alcotest.(check (float 1e-12)) "dma time = Cost.dma_time"
            total.Swarch.Cost.dma_time_s k.Swtrace.Analysis.dma_time
      | ks -> Alcotest.failf "expected one kernel, got %d" (List.length ks))

(* ------------------------------------------------------------------ *)
(* Ring buffer overflow *)

let test_ring_overflow_drops_oldest () =
  T.enable ~capacity:4 ();
  Fun.protect
    ~finally:(fun () -> T.disable ())
    (fun () ->
      for i = 1 to 10 do
        T.span Track.Mpe (string_of_int i) ~t:(float_of_int i) ~dur:0.5
      done;
      Alcotest.(check int) "capacity respected" 4 (T.event_count ());
      Alcotest.(check int) "drops counted" 6 (T.dropped ());
      let names = List.map (fun e -> e.Event.name) (T.events ()) in
      Alcotest.(check (list string)) "newest survive" [ "7"; "8"; "9"; "10" ]
        names)

let suites =
  [
    ( "swtrace",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "unmatched pop ignored" `Quick
          test_unmatched_pop_ignored;
        Alcotest.test_case "counter accumulation" `Quick
          test_counter_accumulation;
        Alcotest.test_case "chrome JSON round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "JSON parser rejects garbage" `Quick
          test_json_parser_rejects_garbage;
        Alcotest.test_case "disabled: no output" `Quick test_disabled_no_output;
        Alcotest.test_case "disabled: zero allocation" `Quick
          test_disabled_zero_allocation;
        Alcotest.test_case "DMA histogram bucketing" `Quick
          test_dma_histogram_bucketing;
        Alcotest.test_case "DMA histogram matches Table 2" `Quick
          test_dma_histogram_matches_bandwidth_curve;
        Alcotest.test_case "observer effect: measure" `Quick
          test_tracing_does_not_change_measurement;
        Alcotest.test_case "observer effect: kernel" `Quick
          test_tracing_does_not_change_kernel_result;
        Alcotest.test_case "roofline matches cost model" `Quick
          test_roofline_matches_cost;
        Alcotest.test_case "ring overflow drops oldest" `Quick
          test_ring_overflow_drops_oldest;
      ] );
  ]
