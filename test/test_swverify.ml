(* Tests for the swverify comparison/fuzzing harness: the ULP machinery
   and tolerance classes against the IEEE edge cases, generator spec
   round-trips, the repro-line plumbing (proved with a forced failure),
   and the quick property matrix that guards the whole stack. *)

open Swverify

(* ------------------------------------------------------------------ *)
(* ULP distance: the ordinal map and its edge cases *)

let test_ulp_adjacent () =
  Alcotest.(check (option int64))
    "1.0 to next_up 1.0 is 1 ulp" (Some 1L)
    (Ulp.dist 1.0 (Ulp.next_up 1.0));
  Alcotest.(check (option int64))
    "x to x is 0" (Some 0L) (Ulp.dist 42.5 42.5);
  Alcotest.(check (option int64))
    "next_down inverts next_up" (Some 0L)
    (Ulp.dist 1.0 (Ulp.next_down (Ulp.next_up 1.0)))

let test_ulp_zero_signs () =
  (* +0.0 and -0.0 share ordinal 0: distinct bits, zero distance *)
  Alcotest.(check (option int64)) "+0 to -0" (Some 0L) (Ulp.dist 0.0 (-0.0));
  Alcotest.(check (option int64))
    "smallest denormal is 1 ulp from zero" (Some 1L)
    (Ulp.dist 0.0 (Int64.float_of_bits 1L));
  Alcotest.(check (option int64))
    "-denormal to +denormal spans 2" (Some 2L)
    (Ulp.dist (-.Int64.float_of_bits 1L) (Int64.float_of_bits 1L))

let test_ulp_infinity () =
  Alcotest.(check (option int64))
    "infinity is 1 past max_float" (Some 1L)
    (Ulp.dist Float.max_float Float.infinity);
  Alcotest.(check (option int64))
    "opposite-sign max_floats saturate" (Some Int64.max_int)
    (Ulp.dist (-.Float.max_float) Float.max_float)

let test_ulp_nan () =
  Alcotest.(check (option int64)) "NaN has no distance" None (Ulp.dist Float.nan 1.0);
  Alcotest.(check int64) "dist_exn maps NaN to max_int" Int64.max_int
    (Ulp.dist_exn 1.0 Float.nan);
  Alcotest.(check bool) "within rejects NaN" false (Ulp.within 1000 Float.nan 0.0)

let test_ulp_denormal_pred () =
  Alcotest.(check bool) "min_float is normal" false (Ulp.is_denormal Float.min_float);
  Alcotest.(check bool) "below min_float is denormal" true
    (Ulp.is_denormal (Ulp.next_down Float.min_float));
  Alcotest.(check bool) "zero is not denormal" false (Ulp.is_denormal 0.0);
  Alcotest.(check bool) "NaN is not denormal" false (Ulp.is_denormal Float.nan)

(* ------------------------------------------------------------------ *)
(* Tolerance classes *)

let test_tol_exact () =
  Alcotest.(check bool) "same bits pass" true (Tol.close Tol.exact 1.5 1.5);
  Alcotest.(check bool) "+0 vs -0 are different bits" false
    (Tol.close Tol.exact 0.0 (-0.0));
  Alcotest.(check bool) "same-bits NaN passes exact" true
    (Tol.close Tol.exact Float.nan Float.nan);
  Alcotest.(check bool) "1 ulp apart fails exact" false
    (Tol.close Tol.exact 1.0 (Ulp.next_up 1.0))

let test_tol_ulps () =
  Alcotest.(check bool) "2 ulps within budget 2" true
    (Tol.close (Tol.ulps 2) 1.0 (Ulp.next_up (Ulp.next_up 1.0)));
  Alcotest.(check bool) "3 ulps outside budget 2" false
    (Tol.close (Tol.ulps 2) 1.0 (Ulp.next_up (Ulp.next_up (Ulp.next_up 1.0))));
  Alcotest.(check bool) "+0 vs -0 within 0 ulps" true
    (Tol.close (Tol.ulps 0) 0.0 (-0.0))

let test_tol_rel_abs () =
  let t = Tol.rel_abs ~rel:1e-6 ~abs:1e-9 in
  Alcotest.(check bool) "within rel" true (Tol.close t 1000.0 1000.0005);
  Alcotest.(check bool) "outside rel" false (Tol.close t 1000.0 1000.5);
  Alcotest.(check bool) "abs floor near zero" true (Tol.close t 0.0 5e-10);
  Alcotest.(check bool) "NaN always fails" false (Tol.close t Float.nan Float.nan);
  (* equal infinities pass (a = b before subtraction), mismatched fail *)
  Alcotest.(check bool) "inf = inf passes" true
    (Tol.close t Float.infinity Float.infinity);
  Alcotest.(check bool) "inf vs -inf fails" false
    (Tol.close t Float.infinity Float.neg_infinity);
  Alcotest.(check bool) "inf vs finite fails" false (Tol.close t Float.infinity 1.0)

let test_tol_check_raises () =
  match Tol.check ~what:"unit" (Tol.ulps 1) 1.0 2.0 with
  | () -> Alcotest.fail "check passed a 2^52-ulp miscompare"
  | exception Failure msg ->
      Alcotest.(check bool) "message carries the label" true
        (String.length msg > 0
        && String.sub msg 0 4 = "unit")

(* ------------------------------------------------------------------ *)
(* Buffer comparison: offender report *)

let test_buf_report () =
  let a = [| 1.0; 2.0; 3.0; 0.0 |] in
  let b = [| 1.0; 2.5; 3.0; 0.0 |] in
  match Buf.compare_arrays (Tol.drift 1e-9) a b with
  | Ok _ -> Alcotest.fail "miscompare not detected"
  | Error r ->
      Alcotest.(check int) "one failure" 1 r.Buf.failures;
      Alcotest.(check int) "worst index" 1 r.Buf.worst_index;
      Alcotest.(check int) "exact elements counted" 3 r.Buf.hist.(0);
      Alcotest.(check bool) "report renders" true
        (String.length (Buf.report_to_string r) > 0)

let test_buf_exact_pass () =
  let a = [| 1.0; -0.0; Float.max_float |] in
  match Buf.compare_arrays Tol.exact a (Array.copy a) with
  | Ok r -> Alcotest.(check int) "all exact" 3 r.Buf.hist.(0)
  | Error _ -> Alcotest.fail "identical arrays failed exact"

(* ------------------------------------------------------------------ *)
(* Generator specs: round-trip and determinism *)

let test_gen_roundtrip () =
  List.iter
    (fun spec ->
      let s = Gen.to_string spec in
      match Gen.of_string s with
      | Ok spec' -> Alcotest.(check string) s s (Gen.to_string spec')
      | Error e -> Alcotest.failf "%s did not parse back: %s" s e)
    [
      Gen.Water { molecules = 8 };
      Gen.Sweep { molecules = 4; charge_scale = 1.25; lj_scale = 0.5 };
      Gen.Overlap { molecules = 4; dist = 1e-6 };
      Gen.Boundary { molecules = 8 };
      Gen.Denormal_vel { molecules = 4 };
    ];
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (Gen.of_string "water:-3"));
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (Gen.of_string "nonsense"))

let test_gen_deterministic () =
  let spec = Gen.Water { molecules = 6 } in
  let a = Gen.build spec ~seed:11 and b = Gen.build spec ~seed:11 in
  (try
     Buf.check_fbuf ~what:"same seed, same positions" Tol.exact
       a.Mdcore.Md_state.pos b.Mdcore.Md_state.pos;
     Buf.check_fbuf ~what:"same seed, same velocities" Tol.exact
       a.Mdcore.Md_state.vel b.Mdcore.Md_state.vel
   with Failure m -> Alcotest.fail m);
  let c = Gen.build spec ~seed:12 in
  Alcotest.(check bool) "different seed, different state" true
    (Result.is_error
       (Buf.compare_fbuf Tol.exact a.Mdcore.Md_state.pos c.Mdcore.Md_state.pos))

let test_gen_denormal_builds () =
  let st = Gen.build (Gen.Denormal_vel { molecules = 4 }) ~seed:3 in
  let has_denormal = ref false in
  Mdcore.Fbuf.iteri
    (fun _ v -> if Ulp.is_denormal v then has_denormal := true)
    st.Mdcore.Md_state.vel;
  Alcotest.(check bool) "velocities contain denormals" true !has_denormal

(* ------------------------------------------------------------------ *)
(* Repro lines: parse, forced failure, replay *)

let test_repro_roundtrip () =
  let c =
    {
      Runner.prop = "zero-net-force";
      gen = Gen.Sweep { molecules = 12; charge_scale = 1.5; lj_scale = 0.25 };
      seed = 99;
      cfg = { Config.platform = "sw26010_pro"; sched = Config.Pipelined; domains = 2 };
    }
  in
  let line = Runner.repro_line c in
  match Runner.parse_repro line with
  | Ok c' -> Alcotest.(check string) "round-trips" line (Runner.repro_line c')
  | Error e -> Alcotest.failf "repro line %S did not parse: %s" line e

let test_repro_rejects_junk () =
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" line)
        true
        (Result.is_error (Runner.parse_repro line)))
    [
      "";
      "prop=x gen=water:1 seed=1 platform=p schedule=serial domains=1";
      "SWVERIFY-REPRO prop=x gen=bogus seed=1 platform=p schedule=serial domains=1";
      "SWVERIFY-REPRO prop=x gen=water:1 seed=nope platform=p schedule=serial domains=1";
      "SWVERIFY-REPRO prop=x gen=water:1 seed=1 platform=p schedule=weird domains=1";
      "SWVERIFY-REPRO prop=x gen=water:1 seed=1 platform=p schedule=serial domains=0";
    ]

(* the forced failure required by the harness contract: the canary
   property fails, its repro line is printable+parseable, and replaying
   the line reproduces the identical failure *)
let test_forced_failure_replays () =
  let c =
    {
      Runner.prop = Props.canary.Props.name;
      gen = Gen.Water { molecules = 1 };
      seed = 13;
      cfg = Config.default;
    }
  in
  match Runner.run_case c with
  | Ok () -> Alcotest.fail "canary property unexpectedly held"
  | Error first -> (
      let line = Runner.repro_line c in
      (match Runner.parse_repro line with
      | Ok c' -> Alcotest.(check string) "line parses back" line (Runner.repro_line c')
      | Error e -> Alcotest.failf "canary repro line did not parse: %s" e);
      match Runner.replay line with
      | Error second ->
          Alcotest.(check string) "replay reproduces the failure" first second
      | Ok () -> Alcotest.fail "replayed canary unexpectedly held")

let test_unknown_prop_fails () =
  Alcotest.(check bool) "unknown property is a failure, not a pass" true
    (Result.is_error
       (Runner.replay
          "SWVERIFY-REPRO prop=no-such-prop gen=water:1 seed=1 \
           platform=sw26010 schedule=serial domains=1"))

(* ------------------------------------------------------------------ *)
(* The quick matrix itself: every case is its own alcotest case, named
   by its repro line, so a failure in CI prints the replay coordinate
   as the test name.  Coverage asserted below. *)

let test_matrix_coverage () =
  let cases = Runner.quick_cases () in
  let distinct f = List.sort_uniq compare (List.map f cases) in
  Alcotest.(check bool)
    ">= 8 properties" true
    (List.length (distinct (fun c -> c.Runner.prop)) >= 8);
  Alcotest.(check bool)
    ">= 2 platforms" true
    (List.length (distinct (fun c -> c.Runner.cfg.Config.platform)) >= 2);
  Alcotest.(check bool)
    ">= 2 schedules" true
    (List.length (distinct (fun c -> c.Runner.cfg.Config.sched)) >= 2);
  Alcotest.(check bool)
    ">= 2 domain counts" true
    (List.length (distinct (fun c -> c.Runner.cfg.Config.domains)) >= 2)

let fuzz_cases =
  List.map
    (fun c ->
      Alcotest.test_case (Runner.repro_line c) `Slow (fun () ->
          match Runner.run_case c with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s\n  %s" (Runner.repro_line c) msg))
    (Runner.quick_cases ())

let suites =
  [
    ( "swverify-ulp",
      [
        Alcotest.test_case "adjacent floats" `Quick test_ulp_adjacent;
        Alcotest.test_case "signed zeros" `Quick test_ulp_zero_signs;
        Alcotest.test_case "infinity" `Quick test_ulp_infinity;
        Alcotest.test_case "NaN" `Quick test_ulp_nan;
        Alcotest.test_case "denormal predicate" `Quick test_ulp_denormal_pred;
      ] );
    ( "swverify-tol",
      [
        Alcotest.test_case "exact-bits" `Quick test_tol_exact;
        Alcotest.test_case "ulp-budget" `Quick test_tol_ulps;
        Alcotest.test_case "physical-drift" `Quick test_tol_rel_abs;
        Alcotest.test_case "check raises with label" `Quick test_tol_check_raises;
        Alcotest.test_case "buffer offender report" `Quick test_buf_report;
        Alcotest.test_case "buffer exact pass" `Quick test_buf_exact_pass;
      ] );
    ( "swverify-gen",
      [
        Alcotest.test_case "spec round-trip" `Quick test_gen_roundtrip;
        Alcotest.test_case "seed determinism" `Quick test_gen_deterministic;
        Alcotest.test_case "denormal generator" `Quick test_gen_denormal_builds;
      ] );
    ( "swverify-repro",
      [
        Alcotest.test_case "line round-trip" `Quick test_repro_roundtrip;
        Alcotest.test_case "junk rejected" `Quick test_repro_rejects_junk;
        Alcotest.test_case "forced failure replays" `Quick test_forced_failure_replays;
        Alcotest.test_case "unknown property fails" `Quick test_unknown_prop_fails;
        Alcotest.test_case "matrix coverage" `Quick test_matrix_coverage;
      ] );
    ("swverify-fuzz", fuzz_cases);
  ]
